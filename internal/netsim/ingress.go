package netsim

import (
	"encoding/binary"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Pool sizing: each pool is a stable superset from which monthly fleets
// are cut as sliding windows, so consecutive months overlap heavily
// (growth with light churn, as observed between the paper's four scans).
const (
	poolAppleDefault   = 380
	poolAkamaiDefault  = 1300
	poolAppleFallback  = 370
	poolAkamaiFallback = 1100
)

// maxAnswerRecords is the maximum number of A/AAAA records per response,
// matching the paper's observation of "up to eight different records".
const maxAnswerRecords = 8

// buildPools materializes every ingress relay address pool.
func (w *World) buildPools() {
	mk := func(as bgp.ASN, proto Proto, fam Family, n int) {
		prefixes := w.ingressPfx[serviceKey{as, fam}]
		pool := make([]netip.Addr, n)
		for i := 0; i < n; i++ {
			pfx := prefixes[i%len(prefixes)]
			// Hosts are packed densely from offset 1; each prefix holds
			// far more hosts than pool/len(prefixes), so no collisions.
			host := uint64(1 + i/len(prefixes))
			pool[i] = iputil.AddrAtIndex(pfx, host)
		}
		w.pools[poolKey{as, proto, fam}] = pool
	}
	mk(ASApple, ProtoDefault, FamilyV4, poolAppleDefault)
	mk(ASAkamaiPR, ProtoDefault, FamilyV4, poolAkamaiDefault)
	mk(ASApple, ProtoFallback, FamilyV4, poolAppleFallback)
	mk(ASAkamaiPR, ProtoFallback, FamilyV4, poolAkamaiFallback)
	// IPv6 pools are sized exactly to the (single) April observation.
	mk(ASApple, ProtoDefault, FamilyV6, w.Params.V6Fleet.Apple)
	mk(ASAkamaiPR, ProtoDefault, FamilyV6, w.Params.V6Fleet.Akamai)
	mk(ASApple, ProtoFallback, FamilyV6, w.Params.V6Fleet.Apple)
	mk(ASAkamaiPR, ProtoFallback, FamilyV6, w.Params.V6Fleet.Akamai)
}

// fleetSize returns the configured fleet size for the month and plane.
func (w *World) fleetSize(month bgp.Month, proto Proto) FleetSizes {
	if proto == ProtoFallback {
		return w.Params.FallbackFleet[month]
	}
	return w.Params.DefaultFleet[month]
}

// monthIndex returns the scan index of month (0 for January 2022).
func monthIndex(m bgp.Month) int {
	for i, sm := range ScanMonths {
		if sm == m {
			return i
		}
	}
	return 0
}

// fleetKey memoizes one IngressFleet result.
type fleetKey struct {
	as    bgp.ASN
	month bgp.Month
	proto Proto
	fam   Family
	phase int
}

// IngressFleet returns the relay addresses of one operator active in the
// given month/plane/family. The phase parameter shifts the fleet window by
// phase addresses, modeling fleet churn between two scans run at slightly
// different times (the RIPE Atlas validation in §4.1 found exactly one
// address the concurrent ECS scan did not).
//
// The returned slice is memoized and shared between callers — treat it as
// read-only.
func (w *World) IngressFleet(as bgp.ASN, month bgp.Month, proto Proto, fam Family, phase int) []netip.Addr {
	key := fleetKey{as, month, proto, fam, phase}
	if cached, ok := w.fleetCache.Load(key); ok {
		return cached.([]netip.Addr)
	}
	fleet := w.buildIngressFleet(as, month, proto, fam, phase)
	cached, _ := w.fleetCache.LoadOrStore(key, fleet)
	return cached.([]netip.Addr)
}

func (w *World) buildIngressFleet(as bgp.ASN, month bgp.Month, proto Proto, fam Family, phase int) []netip.Addr {
	pool := w.pools[poolKey{as, proto, fam}]
	if len(pool) == 0 {
		return nil
	}
	var n int
	if fam == FamilyV6 {
		// A single IPv6 fleet was observed (April); it is month-invariant.
		n = len(pool)
	} else {
		sizes := w.fleetSize(month, proto)
		if as == ASApple {
			n = sizes.Apple
		} else {
			n = sizes.Akamai
		}
	}
	if n <= 0 {
		return nil
	}
	if n > len(pool) {
		n = len(pool)
	}
	// Sliding window: later months start slightly further into the pool,
	// so fleets mostly grow while a few early members rotate out.
	start := monthIndex(month)*5 + phase
	out := make([]netip.Addr, n)
	for i := 0; i < n; i++ {
		out[i] = pool[(start+i)%len(pool)]
	}
	return out
}

// FleetUnion returns both operators' fleets merged, with AS attribution.
func (w *World) FleetUnion(month bgp.Month, proto Proto, fam Family, phase int) map[netip.Addr]bgp.ASN {
	out := make(map[netip.Addr]bgp.ASN)
	for _, addr := range w.IngressFleet(ASApple, month, proto, fam, phase) {
		out[addr] = ASApple
	}
	for _, addr := range w.IngressFleet(ASAkamaiPR, month, proto, fam, phase) {
		out[addr] = ASAkamaiPR
	}
	return out
}

// answerPlan is everything the serving path derives from one client /24
// spelling: whether it belongs to a client AS, the month/proto-invariant
// parts of the serving decision, and the answer key and ECS scope. One
// routing-table walk builds it; every later question about the subnet is
// answered from the cached plan without touching the trie.
type answerPlan struct {
	key   uint64  // record-selection hash (per-/24 in "both" ASes, per-route otherwise)
	scope uint8   // ECS scope length the server advertises
	known bool    // subnet belongs to a client AS
	base  bgp.ASN // serving operator before the fallback ramp
	// marAkamai: the March fallback ramp keeps this /24 at Akamai (only
	// meaningful when base == ASAkamaiPR). Hashed from the exact prefix
	// spelling, matching the historical behavior of the ramp.
	marAkamai bool
}

// serving applies the month/proto-dependent part of the plan: the
// fallback plane was served entirely by Apple until Akamai fallback
// capacity appeared in March (partial) and April (full) — Table 1's
// fallback columns.
func (p answerPlan) serving(month bgp.Month, proto Proto) bgp.ASN {
	s := p.base
	if proto == ProtoFallback && s == ASAkamaiPR {
		switch {
		case month.Before(MonthMar):
			s = ASApple
		case month == MonthMar:
			if !p.marAkamai {
				s = ASApple
			}
		}
	}
	return s
}

// packPrefix packs an IPv4 prefix into the plan-cache key: the address's
// big-endian 32 bits shifted over the prefix length. Distinct spellings
// of the same /24 (host bits set vs. masked) pack differently on
// purpose: plan hashes are computed from the exact spelling, so each
// spelling memoizes its own — historically faithful — plan.
func packPrefix(subnet netip.Prefix) (uint64, bool) {
	addr := subnet.Addr()
	if !addr.Is4() {
		return 0, false
	}
	a4 := addr.As4()
	return uint64(binary.BigEndian.Uint32(a4[:]))<<8 | uint64(uint8(subnet.Bits())), true
}

// planFor returns the memoized answer plan for subnet, building it on
// first sight. The fast path is one epoch-map lookup: no locks, no
// allocations, no routing-table walk. Plans are stored by value — a
// 24-byte copy spares one heap object per /24 in the universe.
func (w *World) planFor(subnet netip.Prefix) answerPlan {
	pk, ok := packPrefix(subnet)
	if !ok {
		return w.buildPlan(subnet)
	}
	if p, ok := w.plans.Get(pk); ok {
		return p
	}
	return w.plans.Put(pk, w.buildPlan(subnet))
}


// buildPlan derives subnet's answer plan with a single routing-table
// walk. Assignment reproduces the Table 2 structure: whole ASes are
// Akamai-only or Apple-only, and inside "both" ASes the split is
// per-/24 with Apple at 76 %.
func (w *World) buildPlan(subnet netip.Prefix) answerPlan {
	route, origin, routed := w.Table.Route(subnet.Addr())
	if !routed {
		return answerPlan{}
	}
	idx, isClient := w.clientIndex(origin)
	if !isClient {
		return answerPlan{}
	}
	group := w.ClientASes[idx].Group

	p := answerPlan{known: true}
	canon := iputil.CanonicalPrefix(subnet)
	switch group {
	case GroupAkamaiOnly:
		p.base = ASAkamaiPR
	case GroupAppleOnly:
		p.base = ASApple
	default:
		h := iputil.Mix(iputil.HashPrefix(canon), w.seed^0xA5)
		if h%100 < 100-appleShareInBothPct {
			p.base = ASAkamaiPR
		} else {
			p.base = ASApple
		}
	}
	if p.base == ASAkamaiPR {
		// March fallback ramp: ~7 % of Akamai-served /24s already have
		// fallback capacity. The hash covers the exact spelling passed in.
		p.marAkamai = iputil.Mix(iputil.HashPrefix(subnet), w.seed^0x7C)%100 < 7
	}
	// Answer key and scope: the /24 inside "both" ASes (operator varies
	// per /24), the covering route otherwise — so the advertised scope is
	// honest, one answer per scope. The scanner exploits scopes shorter
	// than /24 to skip queries (§7).
	if group == GroupBoth {
		p.key = iputil.HashPrefix(canon)
		p.scope = 24
	} else {
		p.key = iputil.HashPrefix(route)
		p.scope = uint8(route.Bits())
	}
	return p
}

// ServingAS decides which ingress operator serves a client /24 on the
// given plane and month. See buildPlan for the assignment structure.
func (w *World) ServingAS(subnet netip.Prefix, month bgp.Month, proto Proto) (bgp.ASN, bool) {
	p := w.planFor(subnet)
	if !p.known {
		return 0, false
	}
	return p.serving(month, proto), true
}

// AnswerScope returns the ECS scope prefix length the authoritative server
// attaches when answering for subnet: /24 inside "both" ASes (operator
// varies per /24) and the covering route's length for single-operator
// ASes, where one answer is valid for the whole announcement.
func (w *World) AnswerScope(subnet netip.Prefix) (uint8, bool) {
	p := w.planFor(subnet)
	if !p.known {
		return 0, false
	}
	return p.scope, true
}

// AnswerClass bundles the per-subnet serving decision for one month and
// plane: the operator, the record-selection key and the ECS scope, all
// from a single plan lookup. Callers that need more than one of these —
// the authoritative server needs all three per query — use this instead
// of three separate World calls.
type AnswerClass struct {
	Serving bgp.ASN
	Key     uint64
	Scope   uint8
	Known   bool
}

// AnswerClass classifies subnet for the month/plane in one lookup.
func (w *World) AnswerClass(subnet netip.Prefix, month bgp.Month, proto Proto) AnswerClass {
	p := w.planFor(subnet)
	if !p.known {
		return AnswerClass{}
	}
	return AnswerClass{
		Serving: p.serving(month, proto),
		Key:     p.key,
		Scope:   p.scope,
		Known:   true,
	}
}

// answerCacheKey identifies one memoized answer set. known separates the
// degenerate "not a client subnet" class (answer key 0, empty answer)
// from a real key that happens to hash to 0. serving is part of the key
// because the answer is pickAnswers(fleet(serving), key) and serving is
// not always a function of key alone: the March fallback ramp hashes the
// /24 itself, so two /24s sharing a covering-route key can be served by
// different operators.
type answerCacheKey struct {
	key     uint64
	known   bool
	serving bgp.ASN
	month   bgp.Month
	proto   Proto
	fam     Family
}

// IngressAnswer returns the up-to-eight A records the authoritative name
// server serves for an ECS query with the given client subnet, for the
// month/plane. Record selection is deterministic per (subnet, month) —
// more precisely per the subnet's answer key, which also determines the
// serving operator — so results are memoized per key and the returned
// slice is shared between callers: treat it as read-only.
func (w *World) IngressAnswer(subnet netip.Prefix, month bgp.Month, proto Proto) []netip.Addr {
	ac := w.AnswerClass(iputil.CanonicalPrefix(subnet), month, proto)
	return w.IngressAnswerFor(ac, month, proto)
}

// IngressAnswerFor returns the A records for an already-classified
// subnet (see AnswerClass), skipping the plan lookup entirely. Callers
// that classified the subnet themselves — the authoritative server does,
// to get the ECS scope — must use this rather than IngressAnswer, or the
// duplicate plan writes degenerate the plan map's epoch publication.
func (w *World) IngressAnswerFor(ac AnswerClass, month bgp.Month, proto Proto) []netip.Addr {
	if !ac.Known {
		return nil
	}
	ck := answerCacheKey{ac.Key, true, ac.Serving, month, proto, FamilyV4}
	if out, ok := w.answers.Get(ck); ok {
		return out
	}
	fleet := w.IngressFleet(ac.Serving, month, proto, FamilyV4, 0)
	if len(fleet) == 0 {
		// Plane not yet deployed at this operator: Apple serves it.
		fleet = w.IngressFleet(ASApple, month, proto, FamilyV4, 0)
		if len(fleet) == 0 {
			return w.answers.Put(ck, nil)
		}
	}
	return w.answers.Put(ck, pickAnswers(fleet, ac.Key, month, proto))
}

// IngressAnswerV6 returns the AAAA records served to a resolver identified
// by key (the server has no per-subnet view for IPv6 — it answers with
// scope 0, §3). The Apple/Akamai split matches the April IPv6 shares.
// Like IngressAnswer, results are memoized per key; the returned slice is
// shared and read-only.
func (w *World) IngressAnswerV6(key uint64, month bgp.Month, proto Proto) []netip.Addr {
	serving := ASAkamaiPR
	// 346/1575 ≈ 22 % of IPv6 relays sit at Apple.
	if iputil.Mix(key, w.seed^0x6A)%100 < 22 {
		serving = ASApple
	}
	ck := answerCacheKey{key, true, serving, month, proto, FamilyV6}
	if out, ok := w.answers.Get(ck); ok {
		return out
	}
	fleet := w.IngressFleet(serving, month, proto, FamilyV6, 0)
	return w.answers.Put(ck, pickAnswers(fleet, key, month, proto))
}

// AnswerKey exposes the memoization key for subnet's answer set: the
// hash the serving assignment and record selection are derived from.
// The boolean reports whether subnet belongs to a client AS.
func (w *World) AnswerKey(subnet netip.Prefix) (uint64, bool) {
	p := w.planFor(iputil.CanonicalPrefix(subnet))
	if !p.known {
		return 0, false
	}
	return p.key, true
}

// pickAnswers deterministically selects up to maxAnswerRecords distinct
// fleet members for a key.
func pickAnswers(fleet []netip.Addr, key uint64, month bgp.Month, proto Proto) []netip.Addr {
	if len(fleet) == 0 {
		return nil
	}
	n := maxAnswerRecords
	if n > len(fleet) {
		n = len(fleet)
	}
	salt := uint64(monthIndex(month))<<8 | uint64(proto)
	out := make([]netip.Addr, 0, n)
	for k := 0; len(out) < n; k++ {
		idx := iputil.Mix(key, salt+uint64(k)*0x9E37) % uint64(len(fleet))
		a := fleet[idx]
		// Linear dedup: n is at most maxAnswerRecords (8), so scanning the
		// short output slice beats allocating a set per query.
		dup := false
		for _, prev := range out {
			if prev == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
		if k > 16*n { // fleet smaller than n after dedup pressure
			break
		}
	}
	return out
}
