package netsim

import (
	"net/netip"
	"sync"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Pool sizing: each pool is a stable superset from which monthly fleets
// are cut as sliding windows, so consecutive months overlap heavily
// (growth with light churn, as observed between the paper's four scans).
const (
	poolAppleDefault   = 380
	poolAkamaiDefault  = 1300
	poolAppleFallback  = 370
	poolAkamaiFallback = 1100
)

// maxAnswerRecords is the maximum number of A/AAAA records per response,
// matching the paper's observation of "up to eight different records".
const maxAnswerRecords = 8

// buildPools materializes every ingress relay address pool.
func (w *World) buildPools() {
	mk := func(as bgp.ASN, proto Proto, fam Family, n int) {
		prefixes := w.ingressPfx[serviceKey{as, fam}]
		pool := make([]netip.Addr, n)
		for i := 0; i < n; i++ {
			pfx := prefixes[i%len(prefixes)]
			// Hosts are packed densely from offset 1; each prefix holds
			// far more hosts than pool/len(prefixes), so no collisions.
			host := uint64(1 + i/len(prefixes))
			pool[i] = iputil.AddrAtIndex(pfx, host)
		}
		w.pools[poolKey{as, proto, fam}] = pool
	}
	mk(ASApple, ProtoDefault, FamilyV4, poolAppleDefault)
	mk(ASAkamaiPR, ProtoDefault, FamilyV4, poolAkamaiDefault)
	mk(ASApple, ProtoFallback, FamilyV4, poolAppleFallback)
	mk(ASAkamaiPR, ProtoFallback, FamilyV4, poolAkamaiFallback)
	// IPv6 pools are sized exactly to the (single) April observation.
	mk(ASApple, ProtoDefault, FamilyV6, w.Params.V6Fleet.Apple)
	mk(ASAkamaiPR, ProtoDefault, FamilyV6, w.Params.V6Fleet.Akamai)
	mk(ASApple, ProtoFallback, FamilyV6, w.Params.V6Fleet.Apple)
	mk(ASAkamaiPR, ProtoFallback, FamilyV6, w.Params.V6Fleet.Akamai)
}

// fleetSize returns the configured fleet size for the month and plane.
func (w *World) fleetSize(month bgp.Month, proto Proto) FleetSizes {
	if proto == ProtoFallback {
		return w.Params.FallbackFleet[month]
	}
	return w.Params.DefaultFleet[month]
}

// monthIndex returns the scan index of month (0 for January 2022).
func monthIndex(m bgp.Month) int {
	for i, sm := range ScanMonths {
		if sm == m {
			return i
		}
	}
	return 0
}

// fleetKey memoizes one IngressFleet result.
type fleetKey struct {
	as    bgp.ASN
	month bgp.Month
	proto Proto
	fam   Family
	phase int
}

// IngressFleet returns the relay addresses of one operator active in the
// given month/plane/family. The phase parameter shifts the fleet window by
// phase addresses, modeling fleet churn between two scans run at slightly
// different times (the RIPE Atlas validation in §4.1 found exactly one
// address the concurrent ECS scan did not).
//
// The returned slice is memoized and shared between callers — treat it as
// read-only.
func (w *World) IngressFleet(as bgp.ASN, month bgp.Month, proto Proto, fam Family, phase int) []netip.Addr {
	key := fleetKey{as, month, proto, fam, phase}
	if cached, ok := w.fleetCache.Load(key); ok {
		return cached.([]netip.Addr)
	}
	fleet := w.buildIngressFleet(as, month, proto, fam, phase)
	cached, _ := w.fleetCache.LoadOrStore(key, fleet)
	return cached.([]netip.Addr)
}

func (w *World) buildIngressFleet(as bgp.ASN, month bgp.Month, proto Proto, fam Family, phase int) []netip.Addr {
	pool := w.pools[poolKey{as, proto, fam}]
	if len(pool) == 0 {
		return nil
	}
	var n int
	if fam == FamilyV6 {
		// A single IPv6 fleet was observed (April); it is month-invariant.
		n = len(pool)
	} else {
		sizes := w.fleetSize(month, proto)
		if as == ASApple {
			n = sizes.Apple
		} else {
			n = sizes.Akamai
		}
	}
	if n <= 0 {
		return nil
	}
	if n > len(pool) {
		n = len(pool)
	}
	// Sliding window: later months start slightly further into the pool,
	// so fleets mostly grow while a few early members rotate out.
	start := monthIndex(month)*5 + phase
	out := make([]netip.Addr, n)
	for i := 0; i < n; i++ {
		out[i] = pool[(start+i)%len(pool)]
	}
	return out
}

// FleetUnion returns both operators' fleets merged, with AS attribution.
func (w *World) FleetUnion(month bgp.Month, proto Proto, fam Family, phase int) map[netip.Addr]bgp.ASN {
	out := make(map[netip.Addr]bgp.ASN)
	for _, addr := range w.IngressFleet(ASApple, month, proto, fam, phase) {
		out[addr] = ASApple
	}
	for _, addr := range w.IngressFleet(ASAkamaiPR, month, proto, fam, phase) {
		out[addr] = ASAkamaiPR
	}
	return out
}

// ServingAS decides which ingress operator serves a client /24 on the
// given plane and month. Assignment reproduces the Table 2 structure:
// whole ASes are Akamai-only or Apple-only, and inside "both" ASes the
// split is per-/24 with Apple at 76 %. The fallback plane was served
// entirely by Apple until Akamai fallback capacity appeared in March.
func (w *World) ServingAS(subnet netip.Prefix, month bgp.Month, proto Proto) (bgp.ASN, bool) {
	client, ok := w.ClientOf(subnet.Addr())
	if !ok {
		return 0, false
	}
	akamaiShare := func(pct uint64) bgp.ASN {
		h := iputil.Mix(iputil.HashPrefix(iputil.CanonicalPrefix(subnet)), w.seed^0xA5)
		if h%100 < pct {
			return ASAkamaiPR
		}
		return ASApple
	}
	var serving bgp.ASN
	switch client.Group {
	case GroupAkamaiOnly:
		serving = ASAkamaiPR
	case GroupAppleOnly:
		serving = ASApple
	default:
		serving = akamaiShare(100 - appleShareInBothPct)
	}
	if proto == ProtoFallback && serving == ASAkamaiPR {
		// Fallback capacity at Akamai ramps up: none before March, partial
		// in March, full in April (Table 1's fallback columns).
		switch {
		case month.Before(MonthMar):
			serving = ASApple
		case month == MonthMar:
			h := iputil.Mix(iputil.HashPrefix(subnet), w.seed^0x7C)
			if h%100 >= 7 {
				serving = ASApple
			}
		}
	}
	return serving, true
}

// AnswerScope returns the ECS scope prefix length the authoritative server
// attaches when answering for subnet: /24 inside "both" ASes (operator
// varies per /24) and the covering route's length for single-operator
// ASes, where one answer is valid for the whole announcement. The scanner
// exploits scopes shorter than /24 to skip queries (§7).
func (w *World) AnswerScope(subnet netip.Prefix) (uint8, bool) {
	client, ok := w.ClientOf(subnet.Addr())
	if !ok {
		return 0, false
	}
	if client.Group == GroupBoth {
		return 24, true
	}
	route, _, ok := w.Table.Route(subnet.Addr())
	if !ok {
		return 24, true
	}
	return uint8(route.Bits()), true
}

// answerKey returns the hash key that selects answer records for a client
// subnet: the /24 inside "both" ASes, the covering route otherwise (so the
// advertised scope is honest — one answer per scope).
func (w *World) answerKey(subnet netip.Prefix) (uint64, bool) {
	client, ok := w.ClientOf(subnet.Addr())
	if !ok {
		return 0, false
	}
	if client.Group == GroupBoth {
		return iputil.HashPrefix(iputil.CanonicalPrefix(subnet)), true
	}
	route, _, ok := w.Table.Route(subnet.Addr())
	if !ok {
		return iputil.HashPrefix(iputil.CanonicalPrefix(subnet)), true
	}
	return iputil.HashPrefix(route), true
}

// answerCacheShards spreads the memoized answer sets over independently
// locked maps so concurrent scan workers rarely contend.
const answerCacheShards = 64

// answerCacheShardCap bounds each shard; a shard that outgrows it is
// cleared wholesale. Values are deterministic, so eviction only costs a
// rebuild — at full scan scale the cache would otherwise retain an entry
// per /24 in "both" ASes.
const answerCacheShardCap = 1 << 13

// answerCacheKey identifies one memoized answer set. known separates the
// degenerate "not a client subnet" class (answer key 0, empty answer)
// from a real key that happens to hash to 0. serving is part of the key
// because the answer is pickAnswers(fleet(serving), key) and serving is
// not always a function of key alone: the March fallback ramp hashes the
// /24 itself, so two /24s sharing a covering-route key can be served by
// different operators.
type answerCacheKey struct {
	key     uint64
	known   bool
	serving bgp.ASN
	month   bgp.Month
	proto   Proto
	fam     Family
}

type answerCacheShard struct {
	mu sync.RWMutex
	m  map[answerCacheKey][]netip.Addr
}

// answerCache is a sharded map rather than a sync.Map: sync.Map boxes
// non-pointer keys on every Load, which would put one allocation back on
// the per-query path this cache exists to clear.
type answerCache struct {
	shards [answerCacheShards]answerCacheShard
}

func (c *answerCache) get(k answerCacheKey) ([]netip.Addr, bool) {
	sh := &c.shards[k.key%answerCacheShards]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// put stores v for k and returns the canonical value: the first writer
// wins, so every caller shares one slice per key.
func (c *answerCache) put(k answerCacheKey, v []netip.Addr) []netip.Addr {
	sh := &c.shards[k.key%answerCacheShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if have, ok := sh.m[k]; ok {
		return have
	}
	if sh.m == nil {
		sh.m = make(map[answerCacheKey][]netip.Addr)
	} else if len(sh.m) >= answerCacheShardCap {
		clear(sh.m)
	}
	sh.m[k] = v
	return v
}

// IngressAnswer returns the up-to-eight A records the authoritative name
// server serves for an ECS query with the given client subnet, for the
// month/plane. Record selection is deterministic per (subnet, month) —
// more precisely per the subnet's answer key, which also determines the
// serving operator — so results are memoized per key and the returned
// slice is shared between callers: treat it as read-only.
func (w *World) IngressAnswer(subnet netip.Prefix, month bgp.Month, proto Proto) []netip.Addr {
	subnet = iputil.CanonicalPrefix(subnet)
	serving, ok := w.ServingAS(subnet, month, proto)
	if !ok {
		return nil
	}
	key, known := w.answerKey(subnet)
	ck := answerCacheKey{key, known, serving, month, proto, FamilyV4}
	if out, ok := w.answers.get(ck); ok {
		return out
	}
	fleet := w.IngressFleet(serving, month, proto, FamilyV4, 0)
	if len(fleet) == 0 {
		// Plane not yet deployed at this operator: Apple serves it.
		fleet = w.IngressFleet(ASApple, month, proto, FamilyV4, 0)
		if len(fleet) == 0 {
			return w.answers.put(ck, nil)
		}
	}
	return w.answers.put(ck, pickAnswers(fleet, key, month, proto))
}

// IngressAnswerV6 returns the AAAA records served to a resolver identified
// by key (the server has no per-subnet view for IPv6 — it answers with
// scope 0, §3). The Apple/Akamai split matches the April IPv6 shares.
// Like IngressAnswer, results are memoized per key; the returned slice is
// shared and read-only.
func (w *World) IngressAnswerV6(key uint64, month bgp.Month, proto Proto) []netip.Addr {
	serving := ASAkamaiPR
	// 346/1575 ≈ 22 % of IPv6 relays sit at Apple.
	if iputil.Mix(key, w.seed^0x6A)%100 < 22 {
		serving = ASApple
	}
	ck := answerCacheKey{key, true, serving, month, proto, FamilyV6}
	if out, ok := w.answers.get(ck); ok {
		return out
	}
	fleet := w.IngressFleet(serving, month, proto, FamilyV6, 0)
	return w.answers.put(ck, pickAnswers(fleet, key, month, proto))
}

// AnswerKey exposes the memoization key for subnet's answer set: the
// hash the serving assignment and record selection are derived from.
// The boolean mirrors answerKey's "is a client subnet" result.
func (w *World) AnswerKey(subnet netip.Prefix) (uint64, bool) {
	return w.answerKey(iputil.CanonicalPrefix(subnet))
}

// pickAnswers deterministically selects up to maxAnswerRecords distinct
// fleet members for a key.
func pickAnswers(fleet []netip.Addr, key uint64, month bgp.Month, proto Proto) []netip.Addr {
	if len(fleet) == 0 {
		return nil
	}
	n := maxAnswerRecords
	if n > len(fleet) {
		n = len(fleet)
	}
	salt := uint64(monthIndex(month))<<8 | uint64(proto)
	out := make([]netip.Addr, 0, n)
	for k := 0; len(out) < n; k++ {
		idx := iputil.Mix(key, salt+uint64(k)*0x9E37) % uint64(len(fleet))
		a := fleet[idx]
		// Linear dedup: n is at most maxAnswerRecords (8), so scanning the
		// short output slice beats allocating a set per query.
		dup := false
		for _, prev := range out {
			if prev == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
		if k > 16*n { // fleet smaller than n after dedup pressure
			break
		}
	}
	return out
}
