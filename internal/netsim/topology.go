package netsim

import (
	"fmt"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// RouterID identifies a router in the simulated topology.
type RouterID string

// Router pool sizes per operator. AkamaiPR's ingress and egress prefixes
// draw last-hop routers from ONE shared pool — reproducing the paper's
// traceroute finding that ingress and egress relays in AS36183 can sit
// behind the same last-hop router (§6).
const (
	akamaiPRRouters   = 40
	appleRouters      = 20
	cloudflareRouters = 30
	fastlyRouters     = 16
	akamaiEdgeRouters = 12
	clientRouters     = 4
)

// LastHop returns the last-hop router in front of addr: the router
// attached to addr's covering BGP prefix. The boolean is false for
// unrouted addresses.
func (w *World) LastHop(addr netip.Addr) (RouterID, bool) {
	route, as, ok := w.Table.Route(addr)
	if !ok {
		return "", false
	}
	return w.routerFor(route, as), true
}

// routerFor deterministically maps a prefix to one of its AS's routers.
func (w *World) routerFor(route netip.Prefix, as bgp.ASN) RouterID {
	var pool int
	switch as {
	case ASAkamaiPR:
		pool = akamaiPRRouters
	case ASApple:
		pool = appleRouters
	case ASCloudflare:
		pool = cloudflareRouters
	case ASFastly:
		pool = fastlyRouters
	case ASAkamaiEdge:
		pool = akamaiEdgeRouters
	default:
		pool = clientRouters
	}
	k := iputil.Mix(iputil.HashPrefix(route), w.seed^uint64(as)) % uint64(pool)
	return RouterID(fmt.Sprintf("%s-r%02d", ASName(as), k))
}

// Hop is one traceroute hop.
type Hop struct {
	Router RouterID
	AS     bgp.ASN // 0 for anonymous transit hops
}

// Traceroute returns the simulated router-level path from src to dst:
// the source's gateway, two or three synthetic transit hops, the
// destination's last-hop router and the destination itself (rendered as a
// pseudo-router). Paths are deterministic per (src route, dst route), so
// two destinations behind the same last hop visibly share it.
func (w *World) Traceroute(src, dst netip.Addr) []Hop {
	var hops []Hop
	if route, as, ok := w.Table.Route(src); ok {
		hops = append(hops, Hop{Router: w.routerFor(route, as), AS: as})
	}
	srcKey := uint64(0)
	if r, _, ok := w.Table.Route(src); ok {
		srcKey = iputil.HashPrefix(r)
	}
	dstKey := uint64(0)
	dstRoute, dstAS, dstRouted := w.Table.Route(dst)
	if dstRouted {
		dstKey = iputil.HashPrefix(dstRoute)
	}
	pathKey := iputil.Mix(srcKey, dstKey)
	nTransit := 2 + int(pathKey%2)
	for i := 0; i < nTransit; i++ {
		hops = append(hops, Hop{
			Router: RouterID(fmt.Sprintf("transit-r%03d", iputil.Mix(pathKey, uint64(i))%512)),
		})
	}
	if dstRouted {
		hops = append(hops, Hop{Router: w.routerFor(dstRoute, dstAS), AS: dstAS})
	}
	hops = append(hops, Hop{Router: RouterID("host-" + dst.String()), AS: dstAS})
	return hops
}

// LastHopBeforeDest returns the penultimate hop of Traceroute(src, dst):
// the measured "last hop address" the paper compares between ingress and
// egress targets.
func (w *World) LastHopBeforeDest(src, dst netip.Addr) (RouterID, bool) {
	hops := w.Traceroute(src, dst)
	if len(hops) < 2 {
		return "", false
	}
	return hops[len(hops)-2].Router, true
}
