package netsim

import (
	"fmt"
	"testing"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Robustness sweep: the calibration invariants must hold for any seed
// and scale, not just the fixtures the other tests use. Each invariant
// here is a paper-reported property the rest of the pipeline depends on.
func TestWorldInvariantsAcrossSeedsAndScales(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for _, seed := range []uint64{0, 1, 999, 123456789} {
		for _, scale := range []float64{0.0003, 0.0015} {
			seed, scale := seed, scale
			t.Run(fmt.Sprintf("seed=%d/scale=%g", seed, scale), func(t *testing.T) {
				w := NewWorld(Params{Seed: seed, Scale: scale})

				// Table 1 headline counts are scale-invariant.
				if n := len(w.FleetUnion(MonthApr, ProtoDefault, FamilyV4, 0)); n != 1586 {
					t.Errorf("April default fleet = %d", n)
				}
				if n := len(w.FleetUnion(MonthFeb, ProtoFallback, FamilyV4, 0)); n != 356 {
					t.Errorf("February fallback fleet = %d", n)
				}

				// Every fleet member is routed and attributed to its operator.
				for addr, as := range w.FleetUnion(MonthApr, ProtoDefault, FamilyV4, 0) {
					origin, ok := w.Table.Origin(addr)
					if !ok || origin != as {
						t.Fatalf("fleet member %v attribution: %v/%v", addr, origin, ok)
					}
				}

				// Serving groups are total over client space and honor the
				// group contract.
				for _, c := range w.ClientASes {
					s := iputil.NthSubnet(c.Prefixes[0], 24, 0)
					as, ok := w.ServingAS(s, MonthApr, ProtoDefault)
					if !ok {
						t.Fatalf("unserved subnet %v", s)
					}
					if c.Group == GroupAkamaiOnly && as != ASAkamaiPR {
						t.Fatalf("akamai-only subnet served by %v", as)
					}
					if c.Group == GroupAppleOnly && as != ASApple {
						t.Fatalf("apple-only subnet served by %v", as)
					}
				}

				// The §6 prefix audit shape is scale-invariant.
				used := len(w.EgressPrefixes(ASAkamaiPR, FamilyV4)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV4)) +
					len(w.EgressPrefixes(ASAkamaiPR, FamilyV6)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV6))
				total := used + len(w.UnusedPrefixes(ASAkamaiPR, FamilyV4)) + len(w.UnusedPrefixes(ASAkamaiPR, FamilyV6))
				if share := float64(used) / float64(total) * 100; share < 91 || share > 94 {
					t.Errorf("prefix used share = %.1f%%", share)
				}

				// Service blocks never collide with client allocations.
				for _, c := range w.ClientASes {
					for _, p := range c.Prefixes {
						if as, _ := w.Table.Origin(p.Addr()); IsServiceAS(as) {
							t.Fatalf("client prefix %v landed in service AS %v", p, as)
						}
					}
				}
			})
		}
	}
}
