package netsim

import (
	"net/netip"
	"testing"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/iputil"
)

// testWorld builds a small world shared across tests in this package.
func testWorld(t testing.TB) *World {
	t.Helper()
	return NewWorld(Params{Seed: 1, Scale: 0.001})
}

func TestASNames(t *testing.T) {
	cases := map[bgp.ASN]string{
		ASApple:      "Apple",
		ASAkamaiPR:   "AkamaiPR",
		ASAkamaiEdge: "AkamaiEdge",
		ASCloudflare: "Cloudflare",
		ASFastly:     "Fastly",
		bgp.ASN(99):  "AS99",
	}
	for as, want := range cases {
		if got := ASName(as); got != want {
			t.Errorf("ASName(%v) = %q, want %q", as, got, want)
		}
	}
}

func TestProtoFamilyGroupStrings(t *testing.T) {
	if ProtoDefault.String() != "default" || ProtoFallback.String() != "fallback" {
		t.Error("Proto strings")
	}
	if FamilyV4.String() != "IPv4" || FamilyV6.String() != "IPv6" {
		t.Error("Family strings")
	}
	if GroupAkamaiOnly.String() != "AkamaiPR" || GroupAppleOnly.String() != "Apple" || GroupBoth.String() != "Both" {
		t.Error("Group strings")
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := NewWorld(Params{Seed: 7, Scale: 0.001})
	b := NewWorld(Params{Seed: 7, Scale: 0.001})
	if len(a.ClientASes) != len(b.ClientASes) {
		t.Fatal("client AS counts differ across identical params")
	}
	for i := range a.ClientASes {
		if a.ClientASes[i].Prefixes[0] != b.ClientASes[i].Prefixes[0] {
			t.Fatalf("client %d prefixes differ", i)
		}
	}
	fa := a.IngressFleet(ASAkamaiPR, MonthApr, ProtoDefault, FamilyV4, 0)
	fb := b.IngressFleet(ASAkamaiPR, MonthApr, ProtoDefault, FamilyV4, 0)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("fleets differ across identical params")
		}
	}
	c := NewWorld(Params{Seed: 8, Scale: 0.001})
	if len(c.ClientASes) != len(a.ClientASes) {
		t.Fatal("seed should not change universe size")
	}
}

func TestClientUniverseShape(t *testing.T) {
	w := testWorld(t)
	counts := map[ServeGroup]int{}
	slash24 := map[ServeGroup]int{}
	for _, c := range w.ClientASes {
		counts[c.Group]++
		slash24[c.Group] += c.Slash24s
	}
	// AS-count ordering from Table 2: AkamaiOnly > AppleOnly > Both.
	if !(counts[GroupAkamaiOnly] > counts[GroupAppleOnly] && counts[GroupAppleOnly] > counts[GroupBoth]) {
		t.Fatalf("group AS counts out of order: %v", counts)
	}
	// Subnet-count ordering: Both ≫ AkamaiOnly > AppleOnly.
	if !(slash24[GroupBoth] > slash24[GroupAkamaiOnly] && slash24[GroupAkamaiOnly] > slash24[GroupAppleOnly]) {
		t.Fatalf("group /24 counts out of order: %v", slash24)
	}
	if w.ClientSlash24Count() != slash24[GroupAkamaiOnly]+slash24[GroupAppleOnly]+slash24[GroupBoth] {
		t.Fatal("ClientSlash24Count inconsistent")
	}
}

func TestClientPopulationsFollowTable2Ordering(t *testing.T) {
	w := testWorld(t)
	pops := map[ServeGroup]int64{}
	for _, c := range w.ClientASes {
		pops[c.Group] += w.Pop.Population(c.ASN)
	}
	// Both (2373M) > AkamaiOnly (994M) > AppleOnly (105M), scaled.
	if !(pops[GroupBoth] > pops[GroupAkamaiOnly] && pops[GroupAkamaiOnly] > pops[GroupAppleOnly]) {
		t.Fatalf("population ordering wrong: %v", pops)
	}
}

func TestClientPrefixesDisjointAndRouted(t *testing.T) {
	w := testWorld(t)
	var prev netip.Prefix
	for i, c := range w.ClientASes {
		p := c.Prefixes[0]
		as, ok := w.Table.Origin(p.Addr())
		if !ok || as != c.ASN {
			t.Fatalf("client %d prefix %v not attributed to its AS", i, p)
		}
		if i > 0 && prev.Overlaps(p) {
			// Allocation is sequential, so only adjacent collisions possible.
			t.Fatalf("client prefixes overlap: %v and %v", prev, p)
		}
		prev = p
	}
}

func TestServicePrefixCalibration(t *testing.T) {
	w := testWorld(t)
	// §6 audit numbers for AkamaiPR.
	v4 := len(w.EgressPrefixes(ASAkamaiPR, FamilyV4)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV4)) + len(w.UnusedPrefixes(ASAkamaiPR, FamilyV4))
	if v4 != 478 {
		t.Fatalf("AkamaiPR v4 prefixes = %d, want 478", v4)
	}
	v6 := len(w.EgressPrefixes(ASAkamaiPR, FamilyV6)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV6)) + len(w.UnusedPrefixes(ASAkamaiPR, FamilyV6))
	if v6 != 1335 {
		t.Fatalf("AkamaiPR v6 prefixes = %d, want 1335", v6)
	}
	used := len(w.EgressPrefixes(ASAkamaiPR, FamilyV4)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV4)) +
		len(w.EgressPrefixes(ASAkamaiPR, FamilyV6)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV6))
	share := float64(used) / float64(v4+v6) * 100
	if share < 91 || share > 94 {
		t.Fatalf("AkamaiPR used-prefix share = %.1f%%, want ≈92.2%%", share)
	}
	// v4 ingress routed prefixes total 123 (Apple 23 + AkamaiPR 100).
	ingress := len(w.IngressPrefixes(ASApple, FamilyV4)) + len(w.IngressPrefixes(ASAkamaiPR, FamilyV4))
	if ingress != 123 {
		t.Fatalf("v4 ingress prefixes = %d, want 123", ingress)
	}
	// Table 3 BGP prefix counts.
	if n := len(w.EgressPrefixes(ASAkamaiEdge, FamilyV4)); n != 1 {
		t.Fatalf("AkamaiEdge v4 egress prefixes = %d, want 1", n)
	}
	if n := len(w.EgressPrefixes(ASCloudflare, FamilyV4)); n != 112 {
		t.Fatalf("Cloudflare v4 egress prefixes = %d, want 112", n)
	}
	if n := len(w.EgressPrefixes(ASCloudflare, FamilyV6)); n != 2 {
		t.Fatalf("Cloudflare v6 egress prefixes = %d, want 2", n)
	}
	if n := len(w.EgressPrefixes(ASFastly, FamilyV4)); n != 81 {
		t.Fatalf("Fastly v4 egress prefixes = %d, want 81", n)
	}
	if n := len(w.EgressPrefixes(ASFastly, FamilyV6)); n != 81 {
		t.Fatalf("Fastly v6 egress prefixes = %d, want 81", n)
	}
}

func TestFleetSizesMatchTable1(t *testing.T) {
	w := testWorld(t)
	cases := []struct {
		month  bgp.Month
		proto  Proto
		apple  int
		akamai int
	}{
		{MonthJan, ProtoDefault, 365, 823},
		{MonthFeb, ProtoDefault, 355, 845},
		{MonthMar, ProtoDefault, 347, 945},
		{MonthApr, ProtoDefault, 349, 1237},
		{MonthFeb, ProtoFallback, 356, 0},
		{MonthMar, ProtoFallback, 334, 25},
		{MonthApr, ProtoFallback, 336, 1062},
	}
	for _, c := range cases {
		na := len(w.IngressFleet(ASApple, c.month, c.proto, FamilyV4, 0))
		nk := len(w.IngressFleet(ASAkamaiPR, c.month, c.proto, FamilyV4, 0))
		if na != c.apple || nk != c.akamai {
			t.Errorf("%v/%v fleet = %d/%d, want %d/%d", c.month, c.proto, na, nk, c.apple, c.akamai)
		}
	}
	// April default total is the paper's 1586 headline.
	if n := len(w.FleetUnion(MonthApr, ProtoDefault, FamilyV4, 0)); n != 1586 {
		t.Fatalf("April default fleet union = %d, want 1586", n)
	}
	// April IPv6 total is 1575 (346 + 1229).
	n6 := len(w.IngressFleet(ASApple, MonthApr, ProtoDefault, FamilyV6, 0)) +
		len(w.IngressFleet(ASAkamaiPR, MonthApr, ProtoDefault, FamilyV6, 0))
	if n6 != 1575 {
		t.Fatalf("IPv6 fleet = %d, want 1575", n6)
	}
}

func TestFleetGrowthOverlap(t *testing.T) {
	w := testWorld(t)
	jan := w.IngressFleet(ASAkamaiPR, MonthJan, ProtoDefault, FamilyV4, 0)
	apr := w.IngressFleet(ASAkamaiPR, MonthApr, ProtoDefault, FamilyV4, 0)
	aprSet := make(map[netip.Addr]bool, len(apr))
	for _, a := range apr {
		aprSet[a] = true
	}
	shared := 0
	for _, a := range jan {
		if aprSet[a] {
			shared++
		}
	}
	if float64(shared)/float64(len(jan)) < 0.9 {
		t.Fatalf("only %d/%d January relays survive to April; want mostly-stable fleet", shared, len(jan))
	}
	if len(apr) <= len(jan) {
		t.Fatal("fleet should grow from January to April")
	}
}

func TestFleetPhaseShiftIntroducesNewAddress(t *testing.T) {
	w := testWorld(t)
	p0 := w.FleetUnion(MonthApr, ProtoDefault, FamilyV4, 0)
	p1 := w.FleetUnion(MonthApr, ProtoDefault, FamilyV4, 1)
	var fresh int
	for a := range p1 {
		if _, ok := p0[a]; !ok {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("phase shift introduced no new address (RIPE-vs-ECS delta unmodelable)")
	}
	if fresh > 5 {
		t.Fatalf("phase shift introduced %d new addresses; want a small delta", fresh)
	}
}

func TestFleetAddressesInsideIngressPrefixes(t *testing.T) {
	w := testWorld(t)
	for _, as := range []bgp.ASN{ASApple, ASAkamaiPR} {
		prefixes := w.IngressPrefixes(as, FamilyV4)
		for _, addr := range w.IngressFleet(as, MonthApr, ProtoDefault, FamilyV4, 0) {
			inside := false
			for _, p := range prefixes {
				if p.Contains(addr) {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("%v relay %v outside ingress prefixes", as, addr)
			}
			if origin, _ := w.Table.Origin(addr); origin != as {
				t.Fatalf("relay %v attributed to %v, want %v", addr, origin, as)
			}
		}
	}
}

func TestServingASGroupInvariants(t *testing.T) {
	w := testWorld(t)
	sawAppleInBoth, sawAkamaiInBoth := false, false
	for _, c := range w.ClientASes {
		p := c.Prefixes[0]
		iputil.Subnets(p, 24, func(s netip.Prefix) bool {
			as, ok := w.ServingAS(s, MonthApr, ProtoDefault)
			if !ok {
				t.Fatalf("unserved client subnet %v", s)
			}
			switch c.Group {
			case GroupAkamaiOnly:
				if as != ASAkamaiPR {
					t.Fatalf("Akamai-only subnet %v served by %v", s, as)
				}
			case GroupAppleOnly:
				if as != ASApple {
					t.Fatalf("Apple-only subnet %v served by %v", s, as)
				}
			default:
				if as == ASApple {
					sawAppleInBoth = true
				} else {
					sawAkamaiInBoth = true
				}
			}
			return true
		})
	}
	if !sawAppleInBoth || !sawAkamaiInBoth {
		t.Fatal("'both' ASes should mix operators across their /24s")
	}
}

func TestServingASFallbackTimeline(t *testing.T) {
	w := testWorld(t)
	// Before March no subnet may be served by Akamai on the fallback plane.
	for _, c := range w.ClientASes {
		s := iputil.NthSubnet(c.Prefixes[0], 24, 0)
		if as, _ := w.ServingAS(s, MonthJan, ProtoFallback); as == ASAkamaiPR {
			t.Fatalf("January fallback served by Akamai for %v", s)
		}
		if as, _ := w.ServingAS(s, MonthFeb, ProtoFallback); as == ASAkamaiPR {
			t.Fatalf("February fallback served by Akamai for %v", s)
		}
	}
}

func TestServingASUnroutedSubnet(t *testing.T) {
	w := testWorld(t)
	if _, ok := w.ServingAS(netip.MustParsePrefix("240.0.0.0/24"), MonthApr, ProtoDefault); ok {
		t.Fatal("unrouted subnet got a serving AS")
	}
}

func TestIngressAnswerProperties(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.ClientASes[:10] {
		s := iputil.NthSubnet(c.Prefixes[0], 24, 0)
		ans := w.IngressAnswer(s, MonthApr, ProtoDefault)
		if len(ans) == 0 || len(ans) > 8 {
			t.Fatalf("answer size %d for %v", len(ans), s)
		}
		want, _ := w.ServingAS(s, MonthApr, ProtoDefault)
		seen := map[netip.Addr]bool{}
		for _, a := range ans {
			if seen[a] {
				t.Fatalf("duplicate answer %v for %v", a, s)
			}
			seen[a] = true
			if as, _ := w.Table.Origin(a); as != want {
				t.Fatalf("answer %v in %v, want all records in serving AS %v", a, as, want)
			}
		}
		// Deterministic.
		again := w.IngressAnswer(s, MonthApr, ProtoDefault)
		for i := range ans {
			if ans[i] != again[i] {
				t.Fatalf("answer for %v not deterministic", s)
			}
		}
	}
}

func TestIngressAnswerScopeHonesty(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.ClientASes {
		if c.Group == GroupBoth {
			continue
		}
		// All /24s within a single-operator AS must share one answer,
		// making the advertised route-length scope honest.
		p := c.Prefixes[0]
		first := w.IngressAnswer(iputil.NthSubnet(p, 24, 0), MonthApr, ProtoDefault)
		last := w.IngressAnswer(iputil.NthSubnet(p, 24, iputil.SubnetCount(p, 24)-1), MonthApr, ProtoDefault)
		if len(first) != len(last) {
			t.Fatalf("scope dishonest for %v: answer sizes differ", p)
		}
		for i := range first {
			if first[i] != last[i] {
				t.Fatalf("scope dishonest for %v: answers differ", p)
			}
		}
		scope, ok := w.AnswerScope(iputil.NthSubnet(p, 24, 0))
		if !ok || int(scope) != p.Bits() {
			t.Fatalf("AnswerScope = %d,%v want %d", scope, ok, p.Bits())
		}
	}
}

func TestAnswerScopeBothIs24(t *testing.T) {
	w := testWorld(t)
	for _, c := range w.ClientASes {
		if c.Group != GroupBoth {
			continue
		}
		scope, ok := w.AnswerScope(iputil.NthSubnet(c.Prefixes[0], 24, 0))
		if !ok || scope != 24 {
			t.Fatalf("both-group scope = %d,%v want 24", scope, ok)
		}
		return
	}
	t.Fatal("no both-group AS in world")
}

func TestIngressAnswerV6(t *testing.T) {
	w := testWorld(t)
	sawApple, sawAkamai := false, false
	for key := uint64(0); key < 200; key++ {
		ans := w.IngressAnswerV6(key, MonthApr, ProtoDefault)
		if len(ans) == 0 || len(ans) > 8 {
			t.Fatalf("v6 answer size %d", len(ans))
		}
		as, _ := w.Table.Origin(ans[0])
		switch as {
		case ASApple:
			sawApple = true
		case ASAkamaiPR:
			sawAkamai = true
		default:
			t.Fatalf("v6 answer from %v", as)
		}
		for _, a := range ans {
			if !a.Is6() || a.Is4In6() {
				t.Fatalf("v6 answer contains non-IPv6 %v", a)
			}
		}
	}
	if !sawApple || !sawAkamai {
		t.Fatal("v6 answers should come from both operators across resolvers")
	}
}

func TestHistoryAkamaiPRFirstSeen(t *testing.T) {
	w := testWorld(t)
	first, ok := w.History.FirstSeen(ASAkamaiPR)
	if !ok || first != (bgp.Month{Year: 2021, M: 6}) {
		t.Fatalf("AkamaiPR FirstSeen = %v,%v want 2021-06", first, ok)
	}
	firstApple, _ := w.History.FirstSeen(ASApple)
	if firstApple != (bgp.Month{Year: 2016, M: 1}) {
		t.Fatalf("Apple FirstSeen = %v", firstApple)
	}
}

func TestLastHopSharedBetweenAkamaiPRIngressAndEgress(t *testing.T) {
	w := testWorld(t)
	routers := map[RouterID]struct{ ingress, egress bool }{}
	for _, p := range w.IngressPrefixes(ASAkamaiPR, FamilyV4) {
		r, ok := w.LastHop(p.Addr().Next())
		if !ok {
			t.Fatalf("no last hop for ingress prefix %v", p)
		}
		e := routers[r]
		e.ingress = true
		routers[r] = e
	}
	for _, p := range w.EgressPrefixes(ASAkamaiPR, FamilyV4) {
		r, ok := w.LastHop(p.Addr().Next())
		if !ok {
			t.Fatalf("no last hop for egress prefix %v", p)
		}
		e := routers[r]
		e.egress = true
		routers[r] = e
	}
	shared := 0
	for _, e := range routers {
		if e.ingress && e.egress {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no shared last-hop router between AkamaiPR ingress and egress — correlation finding unreproducible")
	}
}

func TestLastHopUnrouted(t *testing.T) {
	w := testWorld(t)
	if _, ok := w.LastHop(netip.MustParseAddr("255.255.255.254")); ok {
		t.Fatal("unrouted address has last hop")
	}
}

func TestTracerouteShape(t *testing.T) {
	w := testWorld(t)
	src := w.ClientASes[0].Prefixes[0].Addr().Next()
	dst := w.IngressFleet(ASAkamaiPR, MonthApr, ProtoDefault, FamilyV4, 0)[0]
	hops := w.Traceroute(src, dst)
	if len(hops) < 4 {
		t.Fatalf("traceroute too short: %v", hops)
	}
	if hops[len(hops)-1].Router != RouterID("host-"+dst.String()) {
		t.Fatalf("last hop = %v", hops[len(hops)-1])
	}
	penult := hops[len(hops)-2]
	if penult.AS != ASAkamaiPR {
		t.Fatalf("penultimate hop AS = %v, want AkamaiPR", penult.AS)
	}
	// Determinism.
	again := w.Traceroute(src, dst)
	for i := range hops {
		if hops[i] != again[i] {
			t.Fatal("traceroute not deterministic")
		}
	}
	lh, ok := w.LastHopBeforeDest(src, dst)
	if !ok || lh != penult.Router {
		t.Fatalf("LastHopBeforeDest = %v,%v", lh, ok)
	}
}

func TestIsServiceAS(t *testing.T) {
	if !IsServiceAS(ASApple) || !IsServiceAS(ASFastly) {
		t.Fatal("service AS not recognized")
	}
	if IsServiceAS(bgp.ASN(asnBaseBoth)) {
		t.Fatal("client AS recognized as service")
	}
}

func TestClientOf(t *testing.T) {
	w := testWorld(t)
	c := w.ClientASes[3]
	got, ok := w.ClientOf(c.Prefixes[0].Addr().Next())
	if !ok || got.ASN != c.ASN {
		t.Fatalf("ClientOf = %+v,%v", got, ok)
	}
	if _, ok := w.ClientOf(netip.MustParseAddr("203.0.113.77")); ok {
		t.Fatal("reserved address mapped to a client")
	}
}

func TestRoutedV4PrefixesCoversClientsAndServices(t *testing.T) {
	w := testWorld(t)
	ps := w.RoutedV4Prefixes()
	if len(ps) < len(w.ClientASes)+478+23+112+81+1 {
		t.Fatalf("routed v4 prefixes = %d, too few", len(ps))
	}
	for _, p := range ps {
		if !p.Addr().Is4() {
			t.Fatalf("non-v4 prefix in v4 universe: %v", p)
		}
	}
}

func BenchmarkNewWorldSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewWorld(Params{Seed: 1, Scale: 0.001})
	}
}

func BenchmarkIngressAnswer(b *testing.B) {
	w := NewWorld(Params{Seed: 1, Scale: 0.001})
	s := iputil.NthSubnet(w.ClientASes[0].Prefixes[0], 24, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.IngressAnswer(s, MonthApr, ProtoDefault)
	}
}

func TestMultiPrefixClientASes(t *testing.T) {
	w := testWorld(t)
	multi := 0
	for _, c := range w.ClientASes {
		total := 0
		for _, p := range c.Prefixes {
			as, ok := w.Table.Origin(p.Addr())
			if !ok || as != c.ASN {
				t.Fatalf("prefix %v of %v not attributed", p, c.ASN)
			}
			total += int(iputil.SubnetCount(p, 24))
		}
		if total != c.Slash24s {
			t.Fatalf("%v prefixes hold %d /24s, Slash24s says %d", c.ASN, total, c.Slash24s)
		}
		if len(c.Prefixes) > 1 {
			multi++
			// Discontiguous pieces must still be per-prefix scoped:
			// answers are keyed by covering route for single-op groups.
			if c.Group != GroupBoth {
				for _, p := range c.Prefixes {
					scope, ok := w.AnswerScope(iputil.NthSubnet(p, 24, 0))
					if !ok || int(scope) != p.Bits() {
						t.Fatalf("scope for %v = %d,%v", p, scope, ok)
					}
				}
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-prefix client ASes generated")
	}
}
