package netsim

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// allocator hands out aligned, non-overlapping IPv4 prefixes from the
// unicast space, skipping a reserved list (service blocks, RFC 1918, etc).
// Allocation is strictly sequential, so identical request sequences yield
// identical layouts — part of the world's determinism.
type allocator struct {
	cursor   uint32 // next candidate address
	limit    uint32 // exclusive upper bound
	reserved []netip.Prefix
}

// newAllocator builds an allocator over [1.0.0.0, 224.0.0.0) with the given
// reserved prefixes (which are sorted and may be unsorted on input).
func newAllocator(reserved []netip.Prefix) *allocator {
	rs := append([]netip.Prefix(nil), reserved...)
	sort.Slice(rs, func(i, j int) bool {
		return addrU32(rs[i].Addr()) < addrU32(rs[j].Addr())
	})
	return &allocator{
		cursor:   1 << 24, // 1.0.0.0
		limit:    224 << 24,
		reserved: rs,
	}
}

func addrU32(a netip.Addr) uint32 {
	b := iputil.Canonical(a).As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32Addr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// alloc returns the next free prefix of the given length, advancing the
// cursor. It panics if the space is exhausted, which indicates a
// miscalibrated world (caught immediately by the generation tests).
func (a *allocator) alloc(bits int) netip.Prefix {
	if bits < 8 || bits > 24 {
		panic(fmt.Sprintf("netsim: unsupported allocation size /%d", bits))
	}
	size := uint32(1) << (32 - bits)
	for {
		// Align the cursor to the block size.
		c := (a.cursor + size - 1) &^ (size - 1)
		if c >= a.limit || c+size > a.limit {
			panic("netsim: IPv4 allocation space exhausted — lower Scale")
		}
		p := netip.PrefixFrom(u32Addr(c), bits)
		if hit, next := a.collide(p); hit {
			a.cursor = next
			continue
		}
		a.cursor = c + size
		return p
	}
}

// collide reports whether p overlaps a reserved block and, if so, the first
// address past that block.
func (a *allocator) collide(p netip.Prefix) (bool, uint32) {
	for _, r := range a.reserved {
		if r.Overlaps(p) {
			end := addrU32(r.Addr()) + uint32(iputil.AddrCount(r))
			return true, end
		}
	}
	return false, 0
}

// reservedV4 lists blocks never handed to client ASes: special-use ranges
// and the service operators' blocks.
func reservedV4() []netip.Prefix {
	specs := []string{
		// Special-use.
		"0.0.0.0/8", "10.0.0.0/8", "100.64.0.0/10", "127.0.0.0/8",
		"169.254.0.0/16", "172.16.0.0/12", "192.0.0.0/24", "192.0.2.0/24",
		"192.88.99.0/24", "192.168.0.0/16", "198.18.0.0/15",
		"198.51.100.0/24", "203.0.113.0/24",
		// Service operators (see service blocks in world.go).
		"17.0.0.0/8",     // Apple
		"172.224.0.0/12", // AkamaiPR block 1
		"23.32.0.0/11",   // AkamaiPR block 2
		"2.16.0.0/13",    // AkamaiEdge
		"104.16.0.0/12",  // Cloudflare
		"151.101.0.0/16", // Fastly block 1
		"199.232.0.0/16", // Fastly block 2
	}
	out := make([]netip.Prefix, len(specs))
	for i, s := range specs {
		out[i] = netip.MustParsePrefix(s)
	}
	return out
}
