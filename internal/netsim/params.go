// Package netsim generates a deterministic, seeded model of the slice of
// the Internet that the iCloud Private Relay measurement study touches:
// the five service ASes, a population of client ASes with routed prefixes,
// the monthly ingress relay fleets, per-/24 serving-operator assignment,
// and a router-level topology with last-hop attribution for traceroutes.
//
// Everything is a pure function of Params, so scans, tests and benchmarks
// reproduce identical worlds. The world's shape is calibrated to the
// counts the paper publishes (Tables 1–2, §4.1, §6); the Scale parameter
// shrinks the *client* universe (number of ASes and routed /24s) while
// keeping service-side structures at paper scale.
package netsim

import (
	"github.com/relay-networks/privaterelay/internal/bgp"
)

// Well-known service ASes from the paper.
const (
	ASApple      bgp.ASN = 714   // ingress operator (default + fallback)
	ASAkamaiPR   bgp.ASN = 36183 // "Akamai private relay" AS: ingress AND egress
	ASAkamaiEdge bgp.ASN = 20940 // classic Akamai edge AS: egress only
	ASCloudflare bgp.ASN = 13335 // egress only
	ASFastly     bgp.ASN = 54113 // egress only
)

// ASName returns a human-readable operator name for the service ASes and
// a generic label for client ASes.
func ASName(as bgp.ASN) string {
	switch as {
	case ASApple:
		return "Apple"
	case ASAkamaiPR:
		return "AkamaiPR"
	case ASAkamaiEdge:
		return "AkamaiEdge"
	case ASCloudflare:
		return "Cloudflare"
	case ASFastly:
		return "Fastly"
	}
	return as.String()
}

// Proto distinguishes the two ingress relay planes.
type Proto int

// Relay planes: the QUIC service resolved via mask.icloud.com and the
// TCP (HTTP/2 + TLS 1.3) fallback resolved via mask-h2.icloud.com.
const (
	ProtoDefault  Proto = iota // QUIC — mask.icloud.com
	ProtoFallback              // TCP fallback — mask-h2.icloud.com
)

// String returns the plane name used in Table 1.
func (p Proto) String() string {
	if p == ProtoFallback {
		return "fallback"
	}
	return "default"
}

// Family selects an address family.
type Family int

// Address families.
const (
	FamilyV4 Family = iota
	FamilyV6
)

// String returns "IPv4" or "IPv6".
func (f Family) String() string {
	if f == FamilyV6 {
		return "IPv6"
	}
	return "IPv4"
}

// ServeGroup classifies a client AS by which ingress operator serves its
// subnets (Table 2's three rows).
type ServeGroup int

// Client AS service groups.
const (
	GroupAkamaiOnly ServeGroup = iota
	GroupAppleOnly
	GroupBoth
)

// String names the group as in Table 2.
func (g ServeGroup) String() string {
	switch g {
	case GroupAkamaiOnly:
		return "AkamaiPR"
	case GroupAppleOnly:
		return "Apple"
	default:
		return "Both"
	}
}

// Months covered by the paper's four ECS scans.
var (
	MonthJan = bgp.Month{Year: 2022, M: 1}
	MonthFeb = bgp.Month{Year: 2022, M: 2}
	MonthMar = bgp.Month{Year: 2022, M: 3}
	MonthApr = bgp.Month{Year: 2022, M: 4}

	// ScanMonths is the chronological scan schedule.
	ScanMonths = []bgp.Month{MonthJan, MonthFeb, MonthMar, MonthApr}
)

// FleetSizes holds per-month ingress relay counts per operator,
// calibrated to Table 1 of the paper.
type FleetSizes struct {
	Apple  int
	Akamai int
}

// Params configures world generation.
type Params struct {
	// Seed drives every deterministic choice in the world.
	Seed uint64

	// Scale in (0, 1] shrinks the client universe: AS counts and per-AS
	// subnet sizes are multiplied by it. 1.0 reproduces paper scale
	// (~72 k client ASes, ~12 M routed /24s). Zero defaults to 0.002.
	Scale float64

	// DefaultFleet and FallbackFleet size the monthly ingress fleets.
	// Nil defaults to the paper's Table 1 values.
	DefaultFleet  map[bgp.Month]FleetSizes
	FallbackFleet map[bgp.Month]FleetSizes

	// V6Fleet sizes the IPv6 ingress fleet observed in April (§4.1:
	// 346 Apple + 1229 AkamaiPR). Zero values default to those counts.
	V6Fleet FleetSizes
}

// Table 1 of the paper. January's fallback scan is absent; the fallback
// plane at that time was Apple-served, matching February's observation.
var paperDefaultFleet = map[bgp.Month]FleetSizes{
	MonthJan: {Apple: 365, Akamai: 823},
	MonthFeb: {Apple: 355, Akamai: 845},
	MonthMar: {Apple: 347, Akamai: 945},
	MonthApr: {Apple: 349, Akamai: 1237},
}

var paperFallbackFleet = map[bgp.Month]FleetSizes{
	MonthJan: {Apple: 356, Akamai: 0},
	MonthFeb: {Apple: 356, Akamai: 0},
	MonthMar: {Apple: 334, Akamai: 25},
	MonthApr: {Apple: 336, Akamai: 1062},
}

// withDefaults fills unset fields with paper-calibrated values.
func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 0.002
	}
	if p.Scale > 1 {
		p.Scale = 1
	}
	if p.DefaultFleet == nil {
		p.DefaultFleet = paperDefaultFleet
	}
	if p.FallbackFleet == nil {
		p.FallbackFleet = paperFallbackFleet
	}
	if p.V6Fleet.Apple == 0 && p.V6Fleet.Akamai == 0 {
		p.V6Fleet = FleetSizes{Apple: 346, Akamai: 1229}
	}
	return p
}

// Client-universe calibration (Table 2 at Scale = 1).
const (
	paperAkamaiOnlyASes = 34627
	paperAppleOnlyASes  = 20807
	paperBothASes       = 17301

	paperAkamaiOnlyPop = 994_000_000
	paperAppleOnlyPop  = 105_000_000
	paperBothPop       = 2_373_000_000

	// Within "both" ASes, Apple serves 76 % of subnets (Table 2 footnote).
	appleShareInBothPct = 76
)
