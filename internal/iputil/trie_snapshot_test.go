package iputil

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTrieCloneIsDeepAndIndependent(t *testing.T) {
	var orig Trie[int]
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("2001:db8::/32"),
	}
	for i, p := range prefixes {
		orig.Insert(p, i)
	}

	cl := orig.Clone()
	if cl.Len() != orig.Len() {
		t.Fatalf("clone has %d prefixes, want %d", cl.Len(), orig.Len())
	}
	for i, p := range prefixes {
		if v, ok := cl.Get(p); !ok || v != i {
			t.Fatalf("clone lost %v: %d %v", p, v, ok)
		}
	}

	// Mutating the clone must not leak into the original, and vice versa.
	cl.Insert(netip.MustParsePrefix("192.168.0.0/24"), 99)
	cl.Delete(prefixes[0])
	if _, ok := orig.Get(netip.MustParsePrefix("192.168.0.0/24")); ok {
		t.Fatal("insert into clone visible in original")
	}
	if _, ok := orig.Get(prefixes[0]); !ok {
		t.Fatal("delete in clone removed prefix from original")
	}
	orig.Insert(netip.MustParsePrefix("172.16.0.0/12"), 7)
	if _, ok := cl.Get(netip.MustParsePrefix("172.16.0.0/12")); ok {
		t.Fatal("insert into original visible in clone")
	}
}

func TestTrieCloneNilReceiver(t *testing.T) {
	var nilTrie *Trie[string]
	cl := nilTrie.Clone()
	if cl == nil || cl.Len() != 0 {
		t.Fatalf("nil.Clone() = %v", cl)
	}
	if !cl.Insert(netip.MustParsePrefix("10.0.0.0/8"), "x") {
		t.Fatal("clone of nil trie not usable")
	}
}

// TestTrieSnapshotConcurrentReaders exercises the copy-on-write pattern
// the scanner's skip index relies on: readers hold a snapshot loaded from
// an atomic.Pointer while a writer clones, inserts, and republishes. Run
// under -race this proves snapshot reads never observe mutation.
func TestTrieSnapshotConcurrentReaders(t *testing.T) {
	const inserts = 200
	var snap atomic.Pointer[Trie[int]]
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			addr := netip.AddrFrom4([4]byte{10, byte(r), 1, 1})
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := snap.Load()
				if cur == nil {
					continue
				}
				n := cur.Len()
				if _, v, ok := cur.Lookup(addr); ok && (v < 0 || v >= inserts) {
					t.Errorf("reader saw impossible value %d", v)
					return
				}
				// A snapshot is immutable: its size cannot change while held.
				if cur.Len() != n {
					t.Error("snapshot mutated under reader")
					return
				}
			}
		}(r)
	}

	for i := 0; i < inserts; i++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		next := snap.Load().Clone()
		next.Insert(p, i)
		snap.Store(next)
	}
	close(stop)
	wg.Wait()

	final := snap.Load()
	if final.Len() != inserts {
		t.Fatalf("final snapshot has %d prefixes, want %d", final.Len(), inserts)
	}
}
