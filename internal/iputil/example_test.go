package iputil_test

import (
	"fmt"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

func ExampleTrie() {
	var table iputil.Trie[string]
	table.Insert(netip.MustParsePrefix("23.0.0.0/8"), "AkamaiEdge")
	table.Insert(netip.MustParsePrefix("23.32.0.0/11"), "AkamaiPR")

	pfx, origin, _ := table.Lookup(netip.MustParseAddr("23.34.5.6"))
	fmt.Println(pfx, origin)
	pfx, origin, _ = table.Lookup(netip.MustParseAddr("23.200.0.1"))
	fmt.Println(pfx, origin)
	// Output:
	// 23.32.0.0/11 AkamaiPR
	// 23.0.0.0/8 AkamaiEdge
}

func ExampleSubnets() {
	// Enumerate the /24 client subnets of an announcement, as the ECS
	// scanner does over the routed universe.
	n := 0
	iputil.Subnets(netip.MustParsePrefix("198.51.100.0/22"), 24, func(p netip.Prefix) bool {
		n++
		return true
	})
	fmt.Println(n, "subnets")
	// Output: 4 subnets
}
