package iputil

import (
	"net/netip"
	"sort"
)

// Trie is a binary radix trie over IP prefixes supporting insertion,
// exact lookup, and longest-prefix-match. IPv4 and IPv6 prefixes live in
// separate sub-tries, so a trie can hold a full dual-stack routing table.
//
// The zero value is ready to use. Trie is not safe for concurrent mutation;
// concurrent readers are safe once the trie is built.
type Trie[V any] struct {
	v4, v6 *trieNode[V]
	size   int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// Len returns the number of prefixes stored in the trie.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores val under prefix p, replacing any previous value.
// It reports whether the prefix was newly inserted (false on replace).
// Invalid prefixes are ignored and report false.
func (t *Trie[V]) Insert(p netip.Prefix, val V) bool {
	p = CanonicalPrefix(p)
	if !p.IsValid() {
		return false
	}
	root := t.root(p.Addr(), true)
	n := root
	bits := newAddrBits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := bits.bit(i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	fresh := !n.set
	n.val = val
	n.set = true
	if fresh {
		t.size++
	}
	return fresh
}

// Get returns the value stored under exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	p = CanonicalPrefix(p)
	if !p.IsValid() {
		return zero, false
	}
	n := t.root(p.Addr(), false)
	if n == nil {
		return zero, false
	}
	bits := newAddrBits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bits.bit(i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Lookup performs a longest-prefix match for addr and returns the matched
// prefix, its value, and whether any prefix matched.
func (t *Trie[V]) Lookup(addr netip.Addr) (netip.Prefix, V, bool) {
	var zero V
	addr = Canonical(addr)
	if !addr.IsValid() {
		return netip.Prefix{}, zero, false
	}
	n := t.root(addr, false)
	if n == nil {
		return netip.Prefix{}, zero, false
	}
	bestBits := -1
	var bestVal V
	depth := 0
	bits := newAddrBits(addr)
	maxBits := 128
	if addr.Is4() {
		maxBits = 32
	}
	for {
		if n.set {
			bestBits = depth
			bestVal = n.val
		}
		if depth == maxBits {
			break
		}
		n = n.child[bits.bit(depth)]
		if n == nil {
			break
		}
		depth++
	}
	if bestBits < 0 {
		return netip.Prefix{}, zero, false
	}
	return netip.PrefixFrom(addr, bestBits).Masked(), bestVal, true
}

// Clone returns a deep copy of the trie sharing no nodes with the
// receiver. The copy can be mutated while readers continue on the
// original, which makes Clone the building block for copy-on-write
// snapshot publication (clone, insert, swap an atomic.Pointer). A nil
// receiver yields an empty trie, so the first publication needs no
// special case.
func (t *Trie[V]) Clone() *Trie[V] {
	if t == nil {
		return &Trie[V]{}
	}
	return &Trie[V]{v4: cloneNode(t.v4), v6: cloneNode(t.v6), size: t.size}
}

func cloneNode[V any](n *trieNode[V]) *trieNode[V] {
	if n == nil {
		return nil
	}
	return &trieNode[V]{
		child: [2]*trieNode[V]{cloneNode(n.child[0]), cloneNode(n.child[1])},
		val:   n.val,
		set:   n.set,
	}
}

// Delete removes prefix p from the trie, reporting whether it was present.
// Interior nodes are left in place; the trie is append-mostly in practice.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	p = CanonicalPrefix(p)
	if !p.IsValid() {
		return false
	}
	n := t.root(p.Addr(), false)
	if n == nil {
		return false
	}
	bits := newAddrBits(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bits.bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val = zero
	n.set = false
	t.size--
	return true
}

// Walk visits every stored prefix/value pair in unspecified order, stopping
// early if fn returns false. It reports whether the walk ran to completion.
func (t *Trie[V]) Walk(fn func(netip.Prefix, V) bool) bool {
	for _, fam := range []struct {
		root *trieNode[V]
		base netip.Addr
	}{
		{t.v4, netip.AddrFrom4([4]byte{})},
		{t.v6, netip.AddrFrom16([16]byte{})},
	} {
		if fam.root == nil {
			continue
		}
		if !walkNode(fam.root, fam.base, 0, fn) {
			return false
		}
	}
	return true
}

// Prefixes returns all stored prefixes sorted by address then length.
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

func walkNode[V any](n *trieNode[V], addr netip.Addr, depth int, fn func(netip.Prefix, V) bool) bool {
	if n.set {
		if !fn(netip.PrefixFrom(addr, depth).Masked(), n.val) {
			return false
		}
	}
	if n.child[0] != nil {
		if !walkNode(n.child[0], addr, depth+1, fn) {
			return false
		}
	}
	if n.child[1] != nil {
		if !walkNode(n.child[1], setAddrBit(addr, depth), depth+1, fn) {
			return false
		}
	}
	return true
}

func (t *Trie[V]) root(addr netip.Addr, create bool) *trieNode[V] {
	if addr.Is4() {
		if t.v4 == nil && create {
			t.v4 = &trieNode[V]{}
		}
		return t.v4
	}
	if t.v6 == nil && create {
		t.v6 = &trieNode[V]{}
	}
	return t.v6
}

// addrBits captures an address's raw bytes once so trie walks can test
// bits without re-extracting the byte array at every level. IPv4 bytes
// sit at the tail of the 16-byte form, hence the offset.
type addrBits struct {
	b   [16]byte
	off int
}

func newAddrBits(addr netip.Addr) addrBits {
	off := 0
	if addr.Is4() {
		off = 12
	}
	return addrBits{b: addr.As16(), off: off}
}

// bit returns bit i (0 = most significant) of the address.
func (a *addrBits) bit(i int) int {
	return int(a.b[a.off+i/8]>>(7-i%8)) & 1
}

// setAddrBit returns addr with bit i (0 = most significant) set to one.
func setAddrBit(addr netip.Addr, i int) netip.Addr {
	if addr.Is4() {
		b := addr.As4()
		b[i/8] |= 1 << (7 - i%8)
		return netip.AddrFrom4(b)
	}
	b := addr.As16()
	b[i/8] |= 1 << (7 - i%8)
	return netip.AddrFrom16(b)
}
