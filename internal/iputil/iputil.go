// Package iputil provides IP address and prefix arithmetic used throughout
// the measurement toolkit: subnet enumeration, address indexing inside
// prefixes, deterministic hashing, and a longest-prefix-match radix trie.
//
// All functions operate on net/netip types. IPv4 addresses are handled in
// their native 4-byte form; Is4In6 inputs are unmapped before use so that
// callers can mix representations freely.
package iputil

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Canonical returns addr in its canonical form: IPv4-mapped IPv6 addresses
// are unmapped to plain IPv4. Zone information is stripped, as routing-level
// analysis never deals with scoped addresses.
func Canonical(addr netip.Addr) netip.Addr {
	return addr.Unmap().WithZone("")
}

// CanonicalPrefix returns p with its address canonicalized and host bits
// zeroed (Masked). An invalid prefix is returned unchanged.
func CanonicalPrefix(p netip.Prefix) netip.Prefix {
	if !p.IsValid() {
		return p
	}
	return netip.PrefixFrom(Canonical(p.Addr()), p.Bits()).Masked()
}

// AddrToUint64 returns the top 64 bits of the address as an integer. For
// IPv4 the 32 address bits occupy the high half, so ordering is preserved
// within each family.
func AddrToUint64(addr netip.Addr) uint64 {
	addr = Canonical(addr)
	if addr.Is4() {
		b := addr.As4()
		return uint64(binary.BigEndian.Uint32(b[:])) << 32
	}
	b := addr.As16()
	return binary.BigEndian.Uint64(b[:8])
}

// AddrAtIndex returns the i-th address within prefix p, counting from the
// network address. It panics if i addresses past the end of the prefix;
// callers are expected to bound i by AddrCount.
func AddrAtIndex(p netip.Prefix, i uint64) netip.Addr {
	p = CanonicalPrefix(p)
	if p.Addr().Is4() {
		b := p.Addr().As4()
		base := binary.BigEndian.Uint32(b[:])
		hostBits := 32 - p.Bits()
		if hostBits < 32 && i >= uint64(1)<<hostBits {
			panic(fmt.Sprintf("iputil: index %d out of range for %v", i, p))
		}
		var out [4]byte
		binary.BigEndian.PutUint32(out[:], base+uint32(i))
		return netip.AddrFrom4(out)
	}
	b := p.Addr().As16()
	hi := binary.BigEndian.Uint64(b[:8])
	lo := binary.BigEndian.Uint64(b[8:])
	newLo := lo + i
	if newLo < lo { // carry
		hi++
	}
	var out [16]byte
	binary.BigEndian.PutUint64(out[:8], hi)
	binary.BigEndian.PutUint64(out[8:], newLo)
	return netip.AddrFrom16(out)
}

// AddrCount returns the number of addresses in p, capped at 1<<62 to stay
// representable; IPv6 prefixes shorter than /66 all report the cap.
func AddrCount(p netip.Prefix) uint64 {
	p = CanonicalPrefix(p)
	bits := 128
	if p.Addr().Is4() {
		bits = 32
	}
	host := bits - p.Bits()
	if host >= 62 {
		return 1 << 62
	}
	return 1 << host
}

// SubnetCount returns how many subnets of length newBits fit inside p.
// It returns 0 when newBits is shorter than p's own length. The result is
// capped at 1<<62.
func SubnetCount(p netip.Prefix, newBits int) uint64 {
	p = CanonicalPrefix(p)
	if newBits < p.Bits() {
		return 0
	}
	d := newBits - p.Bits()
	if d >= 62 {
		return 1 << 62
	}
	return 1 << d
}

// NthSubnet returns the n-th subnet of length newBits inside p.
// It panics on out-of-range n or newBits outside [p.Bits(), addrBits].
func NthSubnet(p netip.Prefix, newBits int, n uint64) netip.Prefix {
	p = CanonicalPrefix(p)
	maxBits := 128
	if p.Addr().Is4() {
		maxBits = 32
	}
	if newBits < p.Bits() || newBits > maxBits {
		panic(fmt.Sprintf("iputil: bad subnet length %d for %v", newBits, p))
	}
	if c := SubnetCount(p, newBits); n >= c {
		panic(fmt.Sprintf("iputil: subnet index %d out of range for %v/%d", n, p, newBits))
	}
	host := uint(maxBits - newBits)
	if p.Addr().Is4() {
		addr := AddrAtIndex(netip.PrefixFrom(p.Addr(), p.Bits()), n<<host)
		return netip.PrefixFrom(addr, newBits).Masked()
	}
	// IPv6 offsets need 128-bit arithmetic: add n << host to the address.
	b := p.Addr().As16()
	hi := binary.BigEndian.Uint64(b[:8])
	lo := binary.BigEndian.Uint64(b[8:])
	var sHi, sLo uint64
	switch {
	case host >= 64:
		sHi = n << (host - 64)
	case host == 0:
		sLo = n
	default:
		sLo = n << host
		sHi = n >> (64 - host)
	}
	newLo := lo + sLo
	carry := uint64(0)
	if newLo < lo {
		carry = 1
	}
	binary.BigEndian.PutUint64(b[:8], hi+sHi+carry)
	binary.BigEndian.PutUint64(b[8:], newLo)
	return netip.PrefixFrom(netip.AddrFrom16(b), newBits).Masked()
}

// Subnets calls fn for every subnet of length newBits within p, in address
// order, stopping early if fn returns false. It reports whether iteration
// ran to completion.
func Subnets(p netip.Prefix, newBits int, fn func(netip.Prefix) bool) bool {
	n := SubnetCount(p, newBits)
	// IPv4 fast path: enumerate by stepping a packed uint32 instead of
	// paying NthSubnet's canonicalization and bounds checks per subnet
	// (scan universes iterate millions of /24s through here). Produces
	// bit-identical prefixes to the generic path.
	if a := Canonical(p.Addr()); a.Is4() && newBits > 0 && newBits >= p.Bits() && newBits <= 32 {
		a4 := a.As4()
		base := binary.BigEndian.Uint32(a4[:]) & (^uint32(0) << (32 - p.Bits()))
		step := uint32(1) << (32 - newBits)
		var b [4]byte
		for i := uint64(0); i < n; i++ {
			binary.BigEndian.PutUint32(b[:], base+uint32(i)*step)
			if !fn(netip.PrefixFrom(netip.AddrFrom4(b), newBits)) {
				return false
			}
		}
		return true
	}
	for i := uint64(0); i < n; i++ {
		if !fn(NthSubnet(p, newBits, i)) {
			return false
		}
	}
	return true
}

// ParentAt returns the enclosing prefix of addr with the given length.
func ParentAt(addr netip.Addr, bits int) netip.Prefix {
	return netip.PrefixFrom(Canonical(addr), bits).Masked()
}

// Slash24 returns the /24 containing the IPv4 address addr. It panics if
// addr is not IPv4 (after unmapping).
func Slash24(addr netip.Addr) netip.Prefix {
	addr = Canonical(addr)
	if !addr.Is4() {
		panic("iputil: Slash24 requires an IPv4 address")
	}
	return ParentAt(addr, 24)
}

// Slash64 returns the /64 containing the IPv6 address addr. It panics if
// addr is IPv4.
func Slash64(addr netip.Addr) netip.Prefix {
	addr = Canonical(addr)
	if addr.Is4() {
		panic("iputil: Slash64 requires an IPv6 address")
	}
	return ParentAt(addr, 64)
}

// Contains reports whether p contains the (canonicalized) address addr,
// tolerating mixed 4-in-6 representations.
func Contains(p netip.Prefix, addr netip.Addr) bool {
	return CanonicalPrefix(p).Contains(Canonical(addr))
}

// Overlaps reports whether the two prefixes share any address, tolerating
// mixed representations.
func Overlaps(a, b netip.Prefix) bool {
	return CanonicalPrefix(a).Overlaps(CanonicalPrefix(b))
}

// HashAddr returns a deterministic 64-bit FNV-1a hash of the address.
// It is stable across processes and platforms, which the world generator
// relies on for reproducible assignment decisions.
func HashAddr(addr netip.Addr) uint64 {
	addr = Canonical(addr)
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	if addr.Is4() {
		b := addr.As4()
		for _, c := range b {
			h ^= uint64(c)
			h *= prime
		}
		return h
	}
	b := addr.As16()
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// HashPrefix returns a deterministic 64-bit hash of the prefix, combining
// the masked network address with the prefix length.
func HashPrefix(p netip.Prefix) uint64 {
	p = CanonicalPrefix(p)
	h := HashAddr(p.Addr())
	h ^= uint64(p.Bits()) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// HashString returns a deterministic 64-bit FNV-1a hash of s.
func HashString(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Mix folds extra entropy into a hash value. It implements the
// splitmix64 finalizer, which is cheap and has full avalanche behaviour.
func Mix(h, salt uint64) uint64 {
	h += salt + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
