package iputil

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a
}

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func TestCanonicalUnmaps4In6(t *testing.T) {
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:192.0.2.1").As16())
	got := Canonical(mapped)
	if !got.Is4() {
		t.Fatalf("Canonical(%v) = %v, want plain IPv4", mapped, got)
	}
	if got.String() != "192.0.2.1" {
		t.Fatalf("Canonical(%v) = %v, want 192.0.2.1", mapped, got)
	}
}

func TestCanonicalStripsZone(t *testing.T) {
	a := netip.MustParseAddr("fe80::1%eth0")
	if got := Canonical(a); got.Zone() != "" {
		t.Fatalf("Canonical kept zone: %v", got)
	}
}

func TestCanonicalPrefixMasks(t *testing.T) {
	p := mustPrefix(t, "192.0.2.77/24")
	got := CanonicalPrefix(p)
	if got.Addr().String() != "192.0.2.0" {
		t.Fatalf("CanonicalPrefix(%v) = %v, want masked", p, got)
	}
}

func TestCanonicalPrefixInvalid(t *testing.T) {
	var p netip.Prefix
	if got := CanonicalPrefix(p); got.IsValid() {
		t.Fatalf("CanonicalPrefix(zero) = %v, want invalid", got)
	}
}

func TestAddrAtIndexV4(t *testing.T) {
	p := mustPrefix(t, "10.0.0.0/24")
	cases := []struct {
		i    uint64
		want string
	}{
		{0, "10.0.0.0"},
		{1, "10.0.0.1"},
		{255, "10.0.0.255"},
	}
	for _, c := range cases {
		if got := AddrAtIndex(p, c.i); got.String() != c.want {
			t.Errorf("AddrAtIndex(%v, %d) = %v, want %s", p, c.i, got, c.want)
		}
	}
}

func TestAddrAtIndexV4OutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	AddrAtIndex(mustPrefix(t, "10.0.0.0/24"), 256)
}

func TestAddrAtIndexV6Carry(t *testing.T) {
	p := mustPrefix(t, "2001:db8::/32")
	got := AddrAtIndex(p, 5)
	if got.String() != "2001:db8::5" {
		t.Fatalf("AddrAtIndex = %v, want 2001:db8::5", got)
	}
}

func TestAddrCount(t *testing.T) {
	cases := []struct {
		p    string
		want uint64
	}{
		{"10.0.0.0/24", 256},
		{"10.0.0.0/32", 1},
		{"10.0.0.0/8", 1 << 24},
		{"2001:db8::/64", 1 << 62}, // capped
		{"2001:db8::/120", 256},
	}
	for _, c := range cases {
		if got := AddrCount(mustPrefix(t, c.p)); got != c.want {
			t.Errorf("AddrCount(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestSubnetCount(t *testing.T) {
	if got := SubnetCount(mustPrefix(t, "10.0.0.0/8"), 24); got != 1<<16 {
		t.Errorf("SubnetCount(/8, 24) = %d, want %d", got, 1<<16)
	}
	if got := SubnetCount(mustPrefix(t, "10.0.0.0/24"), 8); got != 0 {
		t.Errorf("SubnetCount(/24, 8) = %d, want 0", got)
	}
}

func TestNthSubnet(t *testing.T) {
	p := mustPrefix(t, "10.0.0.0/8")
	if got := NthSubnet(p, 24, 0).String(); got != "10.0.0.0/24" {
		t.Errorf("NthSubnet(0) = %s", got)
	}
	if got := NthSubnet(p, 24, 257).String(); got != "10.1.1.0/24" {
		t.Errorf("NthSubnet(257) = %s, want 10.1.1.0/24", got)
	}
}

func TestNthSubnetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NthSubnet(mustPrefix(t, "10.0.0.0/24"), 25, 2)
}

func TestSubnetsIteration(t *testing.T) {
	var got []string
	Subnets(mustPrefix(t, "192.0.2.0/24"), 26, func(p netip.Prefix) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"192.0.2.0/26", "192.0.2.64/26", "192.0.2.128/26", "192.0.2.192/26"}
	if len(got) != len(want) {
		t.Fatalf("got %d subnets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("subnet %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestSubnetsEarlyStop(t *testing.T) {
	n := 0
	done := Subnets(mustPrefix(t, "10.0.0.0/8"), 16, func(netip.Prefix) bool {
		n++
		return n < 3
	})
	if done || n != 3 {
		t.Fatalf("early stop: done=%v n=%d, want false/3", done, n)
	}
}

func TestSlash24(t *testing.T) {
	if got := Slash24(mustAddr(t, "198.51.100.200")).String(); got != "198.51.100.0/24" {
		t.Fatalf("Slash24 = %s", got)
	}
}

func TestSlash24PanicsOnV6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Slash24(mustAddr(t, "2001:db8::1"))
}

func TestSlash64(t *testing.T) {
	if got := Slash64(mustAddr(t, "2001:db8:1:2:3::9")).String(); got != "2001:db8:1:2::/64" {
		t.Fatalf("Slash64 = %s", got)
	}
}

func TestContainsMixedRepresentation(t *testing.T) {
	p := mustPrefix(t, "192.0.2.0/24")
	mapped := netip.MustParseAddr("::ffff:192.0.2.9")
	if !Contains(p, mapped) {
		t.Fatal("Contains should unmap 4-in-6 addresses")
	}
}

func TestHashDeterminism(t *testing.T) {
	a := mustAddr(t, "203.0.113.7")
	if HashAddr(a) != HashAddr(a) {
		t.Fatal("HashAddr not deterministic")
	}
	if HashAddr(a) == HashAddr(mustAddr(t, "203.0.113.8")) {
		t.Fatal("adjacent addresses collide (suspicious)")
	}
	p := mustPrefix(t, "203.0.113.0/24")
	if HashPrefix(p) == HashPrefix(mustPrefix(t, "203.0.113.0/25")) {
		t.Fatal("same addr different bits should hash differently")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("HashString collision on single chars")
	}
}

func TestMixChangesValue(t *testing.T) {
	if Mix(1, 2) == Mix(1, 3) {
		t.Fatal("Mix must differ for different salts")
	}
}

// Property: for any IPv4 address, the /24 parent contains the address and
// AddrAtIndex inverts the offset.
func TestPropertySlash24RoundTrip(t *testing.T) {
	f := func(b [4]byte) bool {
		addr := netip.AddrFrom4(b)
		p := Slash24(addr)
		if !p.Contains(addr) {
			return false
		}
		back := AddrAtIndex(p, uint64(b[3]))
		return back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NthSubnet enumerates disjoint subnets that tile the parent.
func TestPropertySubnetTiling(t *testing.T) {
	f := func(b [4]byte, bitsRaw, deltaRaw uint8) bool {
		bits := int(bitsRaw%17) + 8 // /8../24
		delta := int(deltaRaw%4) + 1
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		n := SubnetCount(p, bits+delta)
		var prev netip.Prefix
		for i := uint64(0); i < n; i++ {
			s := NthSubnet(p, bits+delta, i)
			if !p.Overlaps(s) {
				return false
			}
			if i > 0 && prev.Overlaps(s) {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashing is stable and canonicalization-invariant for 4-in-6.
func TestPropertyHashCanonicalInvariance(t *testing.T) {
	f := func(b [4]byte) bool {
		v4 := netip.AddrFrom4(b)
		var m [16]byte
		m[10], m[11] = 0xff, 0xff
		copy(m[12:], b[:])
		mapped := netip.AddrFrom16(m)
		return HashAddr(v4) == HashAddr(mapped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrieInsertGet(t *testing.T) {
	var tr Trie[int]
	if !tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1) {
		t.Fatal("first insert should be fresh")
	}
	if tr.Insert(mustPrefix(t, "10.0.0.0/8"), 2) {
		t.Fatal("second insert should replace, not add")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	v, ok := tr.Get(mustPrefix(t, "10.0.0.0/8"))
	if !ok || v != 2 {
		t.Fatalf("Get = %d,%v want 2,true", v, ok)
	}
	if _, ok := tr.Get(mustPrefix(t, "10.0.0.0/9")); ok {
		t.Fatal("Get of absent prefix should miss")
	}
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), "eight")
	tr.Insert(mustPrefix(t, "10.1.0.0/16"), "sixteen")
	tr.Insert(mustPrefix(t, "10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
		pfx  string
	}{
		{"10.1.2.3", "twentyfour", "10.1.2.0/24"},
		{"10.1.9.9", "sixteen", "10.1.0.0/16"},
		{"10.200.0.1", "eight", "10.0.0.0/8"},
	}
	for _, c := range cases {
		p, v, ok := tr.Lookup(mustAddr(t, c.addr))
		if !ok || v != c.want || p.String() != c.pfx {
			t.Errorf("Lookup(%s) = %v,%q,%v want %s,%q", c.addr, p, v, ok, c.pfx, c.want)
		}
	}
	if _, _, ok := tr.Lookup(mustAddr(t, "11.0.0.1")); ok {
		t.Fatal("Lookup outside table should miss")
	}
}

func TestTrieDualStackSeparation(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "0.0.0.0/0"), 4)
	tr.Insert(mustPrefix(t, "::/0"), 6)
	if _, v, _ := tr.Lookup(mustAddr(t, "8.8.8.8")); v != 4 {
		t.Fatalf("v4 default route: got %d", v)
	}
	if _, v, _ := tr.Lookup(mustAddr(t, "2001:db8::1")); v != 6 {
		t.Fatalf("v6 default route: got %d", v)
	}
}

func TestTrieDelete(t *testing.T) {
	var tr Trie[int]
	p := mustPrefix(t, "192.0.2.0/24")
	tr.Insert(p, 7)
	if !tr.Delete(p) {
		t.Fatal("Delete of present prefix should succeed")
	}
	if tr.Delete(p) {
		t.Fatal("second Delete should fail")
	}
	if _, _, ok := tr.Lookup(mustAddr(t, "192.0.2.1")); ok {
		t.Fatal("Lookup after delete should miss")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", tr.Len())
	}
}

func TestTrieDeleteAbsentBranch(t *testing.T) {
	var tr Trie[int]
	tr.Insert(mustPrefix(t, "10.0.0.0/8"), 1)
	if tr.Delete(mustPrefix(t, "10.128.0.0/9")) {
		t.Fatal("Delete of absent longer prefix should fail")
	}
	if tr.Delete(mustPrefix(t, "2001:db8::/32")) {
		t.Fatal("Delete in empty family should fail")
	}
}

func TestTrieWalkAndPrefixes(t *testing.T) {
	var tr Trie[int]
	inputs := []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "2001:db8::/32"}
	for i, s := range inputs {
		tr.Insert(mustPrefix(t, s), i)
	}
	got := tr.Prefixes()
	if len(got) != len(inputs) {
		t.Fatalf("Prefixes len = %d, want %d", len(got), len(inputs))
	}
	want := []string{"10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "2001:db8::/32"}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Prefixes[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Walk early stop visited %d, want 2", n)
	}
}

func TestTrieInvalidInputs(t *testing.T) {
	var tr Trie[int]
	if tr.Insert(netip.Prefix{}, 1) {
		t.Fatal("Insert of invalid prefix should fail")
	}
	if _, ok := tr.Get(netip.Prefix{}); ok {
		t.Fatal("Get of invalid prefix should miss")
	}
	if _, _, ok := tr.Lookup(netip.Addr{}); ok {
		t.Fatal("Lookup of invalid addr should miss")
	}
}

// Property: LPM result always equals the longest stored prefix that
// contains the address (checked against a linear scan oracle).
func TestPropertyTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Trie[int]
	var stored []netip.Prefix
	for i := 0; i < 300; i++ {
		var b [4]byte
		rng.Read(b[:])
		bits := 8 + rng.Intn(17)
		p := netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
		if tr.Insert(p, i) {
			stored = append(stored, p)
		}
	}
	for i := 0; i < 2000; i++ {
		var b [4]byte
		rng.Read(b[:])
		addr := netip.AddrFrom4(b)
		bestBits := -1
		for _, p := range stored {
			if p.Contains(addr) && p.Bits() > bestBits {
				bestBits = p.Bits()
			}
		}
		gotP, _, ok := tr.Lookup(addr)
		if bestBits < 0 {
			if ok {
				t.Fatalf("Lookup(%v) matched %v, oracle says none", addr, gotP)
			}
			continue
		}
		if !ok || gotP.Bits() != bestBits {
			t.Fatalf("Lookup(%v) = %v,%v; oracle wants /%d", addr, gotP, ok, bestBits)
		}
	}
}

func TestNthSubnetV6LargeHostOffsets(t *testing.T) {
	// /64 subnets inside a /40: host offset is 64 bits — exercises the
	// 128-bit arithmetic path.
	p := mustPrefix(t, "2a04:4e40::/40")
	if got := NthSubnet(p, 64, 0).String(); got != "2a04:4e40::/64" {
		t.Fatalf("NthSubnet(0) = %s", got)
	}
	if got := NthSubnet(p, 64, 1).String(); got != "2a04:4e40:0:1::/64" {
		t.Fatalf("NthSubnet(1) = %s", got)
	}
	if got := NthSubnet(p, 64, 1<<16).String(); got != "2a04:4e40:1::/64" {
		t.Fatalf("NthSubnet(2^16) = %s", got)
	}
	// /64s inside a /48.
	q := mustPrefix(t, "2a02:26f7:1::/48")
	if got := NthSubnet(q, 64, 5).String(); got != "2a02:26f7:1:5::/64" {
		t.Fatalf("NthSubnet(/48, 5) = %s", got)
	}
	// Distinctness across a broad sample.
	seen := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := NthSubnet(p, 64, i*7919).String()
		if seen[s] {
			t.Fatalf("duplicate subnet %s", s)
		}
		seen[s] = true
	}
	// Subnets shorter than 64 bits inside a /32 (host > 64 bits).
	r := mustPrefix(t, "2606:4700::/32")
	if got := NthSubnet(r, 48, 3).String(); got != "2606:4700:3::/48" {
		t.Fatalf("NthSubnet(/32→/48, 3) = %s", got)
	}
}
