// Package geo provides the geolocation substrate: a country catalog with
// centroids, a deterministic city catalog, geohash encoding, and a
// prefix-indexed location database in the spirit of MaxMind GeoLite2.
//
// The paper observes that commercial geolocation databases adopted Apple's
// published egress mapping, i.e. they describe the represented client
// location rather than the relay's physical location. The DB here is
// likewise built *from* the egress list, reproducing that property.
package geo

import (
	"fmt"
	"net/netip"
	"sync"

	"github.com/relay-networks/privaterelay/internal/iputil"
)

// Location is a geolocated place: country, region, city and coordinates.
// City may be empty (1.6 % of egress subnets in the paper omit the city).
type Location struct {
	CountryCode string
	Region      string
	City        string
	Lat, Lon    float64
}

// String renders the location like the egress list columns.
func (l Location) String() string {
	if l.City == "" {
		return l.CountryCode
	}
	return fmt.Sprintf("%s/%s/%s", l.CountryCode, l.Region, l.City)
}

// Geohash returns the location's geohash at the given precision.
func (l Location) Geohash(precision int) string {
	return EncodeGeohash(l.Lat, l.Lon, precision)
}

// CityName returns the deterministic name of the i-th synthetic city of a
// country. Real city names are irrelevant to the analysis; what matters is
// a stable identity per (country, index).
func CityName(cc string, i int) string {
	return fmt.Sprintf("%s-city-%03d", cc, i)
}

// RegionName returns the deterministic region containing city index i.
// Cities are grouped eight per region.
func RegionName(cc string, i int) string {
	return fmt.Sprintf("%s-region-%02d", cc, i/8)
}

// CityLocation returns the full Location of the i-th city of cc, jittered
// deterministically around the country centroid.
func CityLocation(cc string, i int) Location {
	lat, lon := Centroid(cc)
	h := iputil.HashString(fmt.Sprintf("city:%s:%d", cc, i))
	// Jitter within ±3.5° lat, ±6° lon — keeps points inside a country-
	// sized blob while separating cities on a map.
	lat += -3.5 + float64(h%7000)/1000.0
	lon += -6 + float64((h>>13)%12000)/1000.0
	if lat > 89 {
		lat = 89
	}
	if lat < -89 {
		lat = -89
	}
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return Location{
		CountryCode: cc,
		Region:      RegionName(cc, i),
		City:        CityName(cc, i),
		Lat:         lat,
		Lon:         lon,
	}
}

// DB is a longest-prefix-match geolocation database.
// The zero value is not usable; call NewDB.
type DB struct {
	mu   sync.RWMutex
	trie iputil.Trie[Location]
}

// NewDB returns an empty geolocation database.
func NewDB() *DB { return &DB{} }

// Insert maps prefix p to loc, replacing any previous entry for p.
func (db *DB) Insert(p netip.Prefix, loc Location) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.trie.Insert(p, loc)
}

// Lookup geolocates addr via longest-prefix match.
func (db *DB) Lookup(addr netip.Addr) (Location, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, loc, ok := db.trie.Lookup(addr)
	return loc, ok
}

// LookupPrefix geolocates the network address of p.
func (db *DB) LookupPrefix(p netip.Prefix) (Location, bool) {
	return db.Lookup(iputil.CanonicalPrefix(p).Addr())
}

// Network returns the matched database prefix for addr alongside its
// location — callers use it to attribute an address to its listed subnet.
func (db *DB) Network(addr netip.Addr) (netip.Prefix, Location, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.trie.Lookup(addr)
}

// Len returns the number of entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.trie.Len()
}
