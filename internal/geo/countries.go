package geo

import "github.com/relay-networks/privaterelay/internal/iputil"

// AllCountryCodes lists the ISO 3166-1 alpha-2 codes the egress list
// generator may draw from (249 officially assigned codes). Cloudflare's
// egress coverage of 248 country codes in the paper nearly saturates
// this set.
var AllCountryCodes = []string{
	"AD", "AE", "AF", "AG", "AI", "AL", "AM", "AO", "AQ", "AR", "AS", "AT",
	"AU", "AW", "AX", "AZ", "BA", "BB", "BD", "BE", "BF", "BG", "BH", "BI",
	"BJ", "BL", "BM", "BN", "BO", "BQ", "BR", "BS", "BT", "BV", "BW", "BY",
	"BZ", "CA", "CC", "CD", "CF", "CG", "CH", "CI", "CK", "CL", "CM", "CN",
	"CO", "CR", "CU", "CV", "CW", "CX", "CY", "CZ", "DE", "DJ", "DK", "DM",
	"DO", "DZ", "EC", "EE", "EG", "EH", "ER", "ES", "ET", "FI", "FJ", "FK",
	"FM", "FO", "FR", "GA", "GB", "GD", "GE", "GF", "GG", "GH", "GI", "GL",
	"GM", "GN", "GP", "GQ", "GR", "GS", "GT", "GU", "GW", "GY", "HK", "HM",
	"HN", "HR", "HT", "HU", "ID", "IE", "IL", "IM", "IN", "IO", "IQ", "IR",
	"IS", "IT", "JE", "JM", "JO", "JP", "KE", "KG", "KH", "KI", "KM", "KN",
	"KP", "KR", "KW", "KY", "KZ", "LA", "LB", "LC", "LI", "LK", "LR", "LS",
	"LT", "LU", "LV", "LY", "MA", "MC", "MD", "ME", "MF", "MG", "MH", "MK",
	"ML", "MM", "MN", "MO", "MP", "MQ", "MR", "MS", "MT", "MU", "MV", "MW",
	"MX", "MY", "MZ", "NA", "NC", "NE", "NF", "NG", "NI", "NL", "NO", "NP",
	"NR", "NU", "NZ", "OM", "PA", "PE", "PF", "PG", "PH", "PK", "PL", "PM",
	"PN", "PR", "PS", "PT", "PW", "PY", "QA", "RE", "RO", "RS", "RU", "RW",
	"SA", "SB", "SC", "SD", "SE", "SG", "SH", "SI", "SJ", "SK", "SL", "SM",
	"SN", "SO", "SR", "SS", "ST", "SV", "SX", "SY", "SZ", "TC", "TD", "TF",
	"TG", "TH", "TJ", "TK", "TL", "TM", "TN", "TO", "TR", "TT", "TV", "TW",
	"TZ", "UA", "UG", "UM", "US", "UY", "UZ", "VA", "VC", "VE", "VG", "VI",
	"VN", "VU", "WF", "WS", "YE", "YT", "ZA", "ZM", "ZW",
}

// knownCentroids holds approximate geographic centroids (lat, lon) for
// countries that dominate the egress list. Countries not listed fall back
// to a deterministic pseudo-centroid; the analysis only depends on country
// identity and point dispersion, not cartographic accuracy.
var knownCentroids = map[string][2]float64{
	"US": {39.8, -98.6}, "DE": {51.2, 10.4}, "GB": {54.0, -2.5},
	"FR": {46.6, 2.5}, "NL": {52.2, 5.3}, "CA": {56.1, -106.3},
	"JP": {36.2, 138.3}, "AU": {-25.3, 133.8}, "BR": {-14.2, -51.9},
	"IN": {20.6, 79.0}, "IT": {41.9, 12.6}, "ES": {40.5, -3.7},
	"SE": {60.1, 18.6}, "PL": {51.9, 19.1}, "CH": {46.8, 8.2},
	"SG": {1.35, 103.8}, "KR": {35.9, 127.8}, "MX": {23.6, -102.6},
	"RU": {61.5, 105.3}, "ZA": {-30.6, 22.9}, "AR": {-38.4, -63.6},
	"CL": {-35.7, -71.5}, "CO": {4.6, -74.3}, "AT": {47.5, 14.6},
	"BE": {50.5, 4.5}, "DK": {56.3, 9.5}, "FI": {61.9, 25.7},
	"NO": {60.5, 8.5}, "IE": {53.4, -8.2}, "PT": {39.4, -8.2},
	"CZ": {49.8, 15.5}, "RO": {45.9, 25.0}, "HU": {47.2, 19.5},
	"GR": {39.1, 21.8}, "TR": {38.9, 35.2}, "IL": {31.0, 34.9},
	"AE": {23.4, 53.8}, "SA": {23.9, 45.1}, "EG": {26.8, 30.8},
	"NG": {9.1, 8.7}, "KE": {-0.02, 37.9}, "TH": {15.9, 101.0},
	"VN": {14.1, 108.3}, "ID": {-0.8, 113.9}, "MY": {4.2, 101.9},
	"PH": {12.9, 121.8}, "TW": {23.7, 121.0}, "HK": {22.4, 114.1},
	"NZ": {-40.9, 174.9}, "UA": {48.4, 31.2}, "CN": {35.9, 104.2},
	"KN": {17.36, -62.75}, // Saint Kitts and Nevis — the paper's no-PoP example
}

// Centroid returns an approximate (lat, lon) centroid for the country code.
// Unknown codes get a deterministic pseudo-centroid in habitable latitudes
// so that scatter plots disperse plausibly.
func Centroid(cc string) (lat, lon float64) {
	if c, ok := knownCentroids[cc]; ok {
		return c[0], c[1]
	}
	h := iputil.HashString("centroid:" + cc)
	lat = -50 + float64(h%120_000)/1000.0        // [-50, 70)
	lon = -180 + float64((h>>17)%360_000)/1000.0 // [-180, 180)
	return lat, lon
}

// IsCountryCode reports whether cc is one of the assigned alpha-2 codes.
func IsCountryCode(cc string) bool {
	_, ok := countryCodeSet[cc]
	return ok
}

var countryCodeSet = func() map[string]struct{} {
	m := make(map[string]struct{}, len(AllCountryCodes))
	for _, cc := range AllCountryCodes {
		m[cc] = struct{}{}
	}
	return m
}()
