package geo

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAllCountryCodesAssigned(t *testing.T) {
	if len(AllCountryCodes) != 249 {
		t.Fatalf("country codes = %d, want 249 assigned alpha-2 codes", len(AllCountryCodes))
	}
	seen := map[string]bool{}
	for _, cc := range AllCountryCodes {
		if len(cc) != 2 {
			t.Errorf("bad code %q", cc)
		}
		if seen[cc] {
			t.Errorf("duplicate code %q", cc)
		}
		seen[cc] = true
	}
	for _, cc := range []string{"US", "DE", "KN", "TV"} {
		if !IsCountryCode(cc) {
			t.Errorf("IsCountryCode(%s) = false", cc)
		}
	}
	if IsCountryCode("XX") || IsCountryCode("usa") {
		t.Error("bogus codes accepted")
	}
}

func TestCentroidKnownAndFallback(t *testing.T) {
	lat, lon := Centroid("US")
	if lat != 39.8 || lon != -98.6 {
		t.Fatalf("US centroid = %v,%v", lat, lon)
	}
	// Fallback must be deterministic and in range.
	la1, lo1 := Centroid("ZW")
	la2, lo2 := Centroid("ZW")
	if la1 != la2 || lo1 != lo2 {
		t.Fatal("fallback centroid not deterministic")
	}
	if la1 < -50 || la1 >= 70 || lo1 < -180 || lo1 >= 180 {
		t.Fatalf("fallback centroid out of range: %v,%v", la1, lo1)
	}
}

func TestGeohashKnownValue(t *testing.T) {
	// Reference value: geohash of (57.64911, 10.40744) is u4pruydqqvj.
	got := EncodeGeohash(57.64911, 10.40744, 11)
	if got != "u4pruydqqvj" {
		t.Fatalf("EncodeGeohash = %q, want u4pruydqqvj", got)
	}
}

func TestGeohashDecodeInverse(t *testing.T) {
	lat, lon, err := DecodeGeohash("u4pruydqqvj")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-57.64911) > 0.001 || math.Abs(lon-10.40744) > 0.001 {
		t.Fatalf("decode = %v,%v", lat, lon)
	}
}

func TestGeohashPrecisionClamping(t *testing.T) {
	if got := EncodeGeohash(0, 0, 0); len(got) != 1 {
		t.Fatalf("precision 0 → len %d", len(got))
	}
	if got := EncodeGeohash(0, 0, 99); len(got) != 12 {
		t.Fatalf("precision 99 → len %d", len(got))
	}
}

func TestGeohashBadInput(t *testing.T) {
	if _, _, err := DecodeGeohash(""); err == nil {
		t.Fatal("empty geohash accepted")
	}
	if _, _, err := DecodeGeohash("aio"); err == nil {
		t.Fatal("alphabet excludes a/i/o/l — should be rejected")
	}
}

// Property: decode(encode(p)) stays within the cell's error bounds, and
// re-encoding the decoded center reproduces the hash.
func TestPropertyGeohashRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		lat := -90 + float64(a%180_000)/1000.0
		lon := -180 + float64(b%360_000)/1000.0
		h := EncodeGeohash(lat, lon, 8)
		dlat, dlon, err := DecodeGeohash(h)
		if err != nil {
			return false
		}
		// Precision-8 cell is ~0.00017° lat × 0.00034° lon.
		if math.Abs(dlat-lat) > 0.001 || math.Abs(dlon-lon) > 0.001 {
			return false
		}
		return EncodeGeohash(dlat, dlon, 8) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCityCatalogDeterminism(t *testing.T) {
	a := CityLocation("DE", 5)
	b := CityLocation("DE", 5)
	if a != b {
		t.Fatal("CityLocation not deterministic")
	}
	if a.City != "DE-city-005" || a.Region != "DE-region-00" {
		t.Fatalf("naming: %+v", a)
	}
	if CityLocation("DE", 8).Region != "DE-region-01" {
		t.Fatal("region grouping broken")
	}
	other := CityLocation("DE", 6)
	if other.Lat == a.Lat && other.Lon == a.Lon {
		t.Fatal("distinct cities share coordinates")
	}
	clat, clon := Centroid("DE")
	if math.Abs(a.Lat-clat) > 4 || math.Abs(a.Lon-clon) > 7 {
		t.Fatalf("city strayed from centroid: %+v", a)
	}
}

func TestCityLocationCoordinateBounds(t *testing.T) {
	for _, cc := range AllCountryCodes {
		for i := 0; i < 3; i++ {
			l := CityLocation(cc, i)
			if l.Lat < -90 || l.Lat > 90 || l.Lon < -180 || l.Lon > 180 {
				t.Fatalf("out-of-range coords for %s/%d: %+v", cc, i, l)
			}
		}
	}
}

func TestLocationString(t *testing.T) {
	l := Location{CountryCode: "US", Region: "US-region-00", City: "US-city-001"}
	if l.String() != "US/US-region-00/US-city-001" {
		t.Fatalf("String = %s", l.String())
	}
	blank := Location{CountryCode: "US"}
	if blank.String() != "US" {
		t.Fatalf("blank-city String = %s", blank.String())
	}
}

func TestDBLookup(t *testing.T) {
	db := NewDB()
	usLoc := CityLocation("US", 0)
	deLoc := CityLocation("DE", 0)
	db.Insert(netip.MustParsePrefix("172.224.224.0/27"), usLoc)
	db.Insert(netip.MustParsePrefix("172.224.0.0/12"), deLoc)

	got, ok := db.Lookup(netip.MustParseAddr("172.224.224.5"))
	if !ok || got.CountryCode != "US" {
		t.Fatalf("Lookup = %+v,%v want US (most specific)", got, ok)
	}
	got, ok = db.Lookup(netip.MustParseAddr("172.230.0.1"))
	if !ok || got.CountryCode != "DE" {
		t.Fatalf("Lookup = %+v,%v want DE", got, ok)
	}
	if _, ok := db.Lookup(netip.MustParseAddr("9.9.9.9")); ok {
		t.Fatal("unknown address geolocated")
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}

	gotP, ok := db.LookupPrefix(netip.MustParsePrefix("172.224.224.0/27"))
	if !ok || gotP.City != usLoc.City {
		t.Fatalf("LookupPrefix = %+v,%v", gotP, ok)
	}
}

func TestLocationGeohash(t *testing.T) {
	l := Location{Lat: 57.64911, Lon: 10.40744}
	if got := l.Geohash(5); got != "u4pru" {
		t.Fatalf("Geohash = %q", got)
	}
}

func TestDistanceKm(t *testing.T) {
	// Munich (48.14, 11.58) to New York (40.71, -74.01) ≈ 6,488 km.
	d := DistanceKm(48.14, 11.58, 40.71, -74.01)
	if d < 6300 || d < 0 || d > 6700 {
		t.Fatalf("Munich–NYC distance = %.0f km", d)
	}
	if got := DistanceKm(10, 20, 10, 20); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
	// Symmetry.
	if DistanceKm(1, 2, 3, 4) != DistanceKm(3, 4, 1, 2) {
		t.Fatal("distance not symmetric")
	}
	// Antipodal bound: max ≈ half the circumference ≈ 20,015 km.
	if d := DistanceKm(0, 0, 0, 180); d < 19000 || d > 21000 {
		t.Fatalf("antipodal distance = %.0f", d)
	}
}
