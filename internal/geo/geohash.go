package geo

import (
	"errors"
	"math"
	"strings"
)

// DistanceKm returns the great-circle distance between two points via
// the haversine formula — the latency model's propagation input.
func DistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371
	rad := func(d float64) float64 { return d * math.Pi / 180 }
	dLat := rad(lat2 - lat1)
	dLon := rad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(rad(lat1))*math.Cos(rad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}

// geohashBase32 is the standard geohash alphabet.
const geohashBase32 = "0123456789bcdefghjkmnpqrstuvwxyz"

// ErrBadGeohash is returned for strings outside the geohash alphabet.
var ErrBadGeohash = errors.New("geo: invalid geohash")

// EncodeGeohash returns the geohash of (lat, lon) at the given precision
// (number of base-32 characters, 1..12). iCloud Private Relay transmits a
// coarse geohash of the client location to the egress when the user keeps
// "maintain general location" enabled.
func EncodeGeohash(lat, lon float64, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > 12 {
		precision = 12
	}
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	var sb strings.Builder
	sb.Grow(precision)
	evenBit := true
	idx := 0
	bit := 0
	for sb.Len() < precision {
		if evenBit {
			mid := (lonLo + lonHi) / 2
			if lon >= mid {
				idx = idx*2 + 1
				lonLo = mid
			} else {
				idx = idx * 2
				lonHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if lat >= mid {
				idx = idx*2 + 1
				latLo = mid
			} else {
				idx = idx * 2
				latHi = mid
			}
		}
		evenBit = !evenBit
		bit++
		if bit == 5 {
			sb.WriteByte(geohashBase32[idx])
			bit, idx = 0, 0
		}
	}
	return sb.String()
}

// DecodeGeohash returns the center point of the cell named by hash.
func DecodeGeohash(hash string) (lat, lon float64, err error) {
	if hash == "" {
		return 0, 0, ErrBadGeohash
	}
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	evenBit := true
	for _, c := range strings.ToLower(hash) {
		idx := strings.IndexRune(geohashBase32, c)
		if idx < 0 {
			return 0, 0, ErrBadGeohash
		}
		for b := 4; b >= 0; b-- {
			bit := idx >> b & 1
			if evenBit {
				mid := (lonLo + lonHi) / 2
				if bit == 1 {
					lonLo = mid
				} else {
					lonHi = mid
				}
			} else {
				mid := (latLo + latHi) / 2
				if bit == 1 {
					latLo = mid
				} else {
					latHi = mid
				}
			}
			evenBit = !evenBit
		}
	}
	return (latLo + latHi) / 2, (lonLo + lonHi) / 2, nil
}
