package geo_test

import (
	"fmt"
	"net/netip"

	"github.com/relay-networks/privaterelay/internal/geo"
)

func ExampleEncodeGeohash() {
	// The coarse location hash the relay forwards to the egress in
	// region-preserving mode (precision 4 ≈ a metro-area cell).
	fmt.Println(geo.EncodeGeohash(57.64911, 10.40744, 4))
	// Output: u4pr
}

func ExampleDistanceKm() {
	munich := [2]float64{48.14, 11.58}
	newYork := [2]float64{40.71, -74.01}
	km := geo.DistanceKm(munich[0], munich[1], newYork[0], newYork[1])
	fmt.Println(km > 6300 && km < 6600)
	// Output: true
}

func ExampleDB_Lookup() {
	db := geo.NewDB()
	db.Insert(netip.MustParsePrefix("172.224.224.0/27"),
		geo.Location{CountryCode: "US", City: "US-city-001"})
	loc, ok := db.Lookup(netip.MustParseAddr("172.224.224.9"))
	fmt.Println(ok, loc.CountryCode, loc.City)
	// Output: true US US-city-001
}
