package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the bit-identical-dataset contract: inside the
// deterministic packages every timestamp must come from the injected
// clock (faults.Clock / vclock.Clock), randomness must come from a
// seeded source, and map iteration order must never reach a returned
// slice or a writer unsorted.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global randomness and order-leaking map ranges " +
		"in the packages whose outputs must be bit-identical across runs",
	Run: runDeterminism,
}

// deterministicPkgs are the packages (by module-relative suffix) whose
// outputs feed datasets and must therefore be pure functions of their
// inputs. vclock is deliberately absent: it is the one sanctioned
// boundary to the wall clock.
var deterministicPkgs = []string{
	"internal/netsim",
	"internal/core",
	"internal/colstore",
	"internal/analysis",
	"internal/egress",
	"internal/atlas",
	"internal/faults",
	"internal/masque",
	"internal/relayd",
}

// wallClockFuncs are the time package functions that read the wall
// clock directly.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// timerFuncs are the time package functions that schedule against the
// wall clock; deterministic packages must route timers through the
// injected vclock.Clock instead.
var timerFuncs = map[string]bool{
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true, "Sleep": true,
}

// seededRandConstructors build a caller-seeded source and are allowed;
// every other package-level math/rand call draws from the global
// (non-reproducible) source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	if !inDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: route through the injected faults.Clock",
						fn.Name(), pass.Pkg.Name())
				}
				if timerFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: route timers through the injected vclock.Clock",
						fn.Name(), pass.Pkg.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global %s.%s in deterministic package %s: draw from a seeded source instead",
						fn.Pkg().Name(), fn.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
		checkMapRangeOrder(pass, file)
	}
	return nil
}

func inDeterministicPkg(path string) bool {
	for _, suffix := range deterministicPkgs {
		if hasPathSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// checkMapRangeOrder flags `range` over a map when the iteration order
// can leak into an output: a write/print call inside the loop body, or
// a slice appended to in the body that is later returned without any
// sort call taking it in between. Accumulating into maps, sets or
// counters is order-independent and never flagged.
func checkMapRangeOrder(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var ranges []*ast.RangeStmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok && isMapType(pass.Info.TypeOf(rs.X)) {
				ranges = append(ranges, rs)
			}
			return true
		})
		if len(ranges) == 0 {
			continue
		}
		sorted := sortedVars(pass, fd)
		returned := returnedVars(pass, fd)
		for _, rs := range ranges {
			checkOneMapRange(pass, fd, rs, sorted, returned)
		}
	}
}

func checkOneMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, sorted, returned map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && isMapType(pass.Info.TypeOf(n.X)) {
				return false // the nested range gets its own report
			}
		case *ast.CallExpr:
			if isOrderedSink(pass.Info, n) {
				pass.Reportf(n.Pos(),
					"write inside range over map: iteration order reaches the output unsorted")
				return false
			}
		case *ast.AssignStmt:
			// s = append(s, ...) inside the loop: order lands in s.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if obj == nil || !returned[obj] || sorted[obj] {
					continue
				}
				pass.Reportf(rs.Pos(),
					"range over map appends to returned slice %s without a sort: iteration order leaks into the result",
					id.Name)
				return false
			}
		}
		return true
	})
}

// sortedVars collects variables that appear as an argument to any call
// whose name mentions sort (sort.Slice, slices.SortFunc, sortAddrs, …):
// evidence the author re-established a deterministic order.
func sortedVars(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortingCall(pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// returnedVars collects variables that escape the function via a return
// statement (directly or as named results).
func returnedVars(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isSortingCall recognizes anything from sort/slices plus local helpers
// whose name mentions sort (sortAddrs and friends).
func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "sort")
}

// isOrderedSink recognizes calls that emit output in call order:
// fmt.Fprint*/Print* and Write*-style methods on any receiver.
func isOrderedSink(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
		return true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "io" && name == "WriteString" {
		return true
	}
	if fn.Type().(*types.Signature).Recv() != nil && strings.HasPrefix(name, "Write") {
		return true
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
