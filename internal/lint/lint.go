// Package lint is relaylint: a project-specific static-analysis suite
// enforcing the invariants the test suite can only spot-check — pooled
// message lifecycles (poolcheck), dataset determinism (determinism),
// atomic-field access discipline (atomicfield), epoch-published map
// immutability (epochcheck), enum switch coverage (exhaustive),
// shard-lock ordering and leaf discipline (lockorder), goroutine
// termination evidence (goroleak) and atomic durable writes
// (durability). A ninth check, hotalloc, is not a per-package pass: it
// gates the compiler's escape analysis against a committed manifest of
// zero-alloc hot functions (see hotalloc.go and cmd/relaylint
// -hotalloc).
//
// The path-sensitive analyzers share the control-flow engine in cfg.go.
//
// The suite is deliberately dependency-free: it mirrors the
// golang.org/x/tools/go/analysis Analyzer/Pass shape on the standard
// library alone, loading type information through `go list -export`
// and the gc export-data importer, so `go run ./cmd/relaylint ./...`
// needs nothing beyond the toolchain that builds the repo.
//
// Suppression: a finding is silenced by a `//lint:allow <analyzer>`
// comment on the flagged line or the line directly above it. Multiple
// analyzers may be listed comma-separated; anything after the analyzer
// list is a free-form justification, which the convention requires.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"
)

// modulePath scopes project-specific rules (enum sets, deterministic
// packages) to this repository's types.
const modulePath = "github.com/relay-networks/privaterelay"

// dnswirePath identifies the pooled-message package poolcheck guards.
const dnswirePath = modulePath + "/internal/dnswire"

// An Analyzer is one lint pass. The shape mirrors
// golang.org/x/tools/go/analysis so the passes could migrate to a
// multichecker unchanged if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic as printed by cmd/relaylint.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// MarshalJSON flattens the position into the stable schema the CI
// artifact consumes: analyzer, file, line, column, message.
func (f Finding) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}{f.Analyzer, f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message})
}

// All returns the full relaylint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Poolcheck, Determinism, Atomicfield, Epochcheck, Exhaustive, Lockorder, Goroleak, Durability}
}

// HotallocName is the name the escape gate reports under; it is valid
// in -list output and directive validation even though the gate is not
// a per-package Analyzer.
const HotallocName = "hotalloc"

// knownAnalyzerNames returns every name a //lint:allow directive may
// legitimately cite.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{"*": true, HotallocName: true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

// AnalyzerStat is the per-analyzer slice of a Report: stable names for
// the -json schema consumed by the CI artifact.
type AnalyzerStat struct {
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	Findings     int     `json:"findings"`
	Suppressions int     `json:"suppressions"`
}

// Report is the stable machine-readable result of one suite run.
// Version bumps whenever a field changes meaning.
type Report struct {
	Version   int            `json:"version"`
	Analyzers []AnalyzerStat `json:"analyzers"`
	Findings  []Finding      `json:"findings"`
}

// RunAnalyzers applies each analyzer to each package and returns the
// unsuppressed findings, sorted by position. It is the thin wrapper
// over RunSuite kept for callers that only want findings.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	report, err := RunSuite(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return report.Findings, nil
}

// RunSuite applies each analyzer to each package, accumulating per-
// analyzer wall time, finding and suppression counts. A //lint:allow
// directive naming an unknown analyzer is itself a finding (reported
// under the pseudo-analyzer "lint") — a typo there would otherwise
// silently disable nothing while looking like it suppressed something.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) (*Report, error) {
	report := &Report{Version: 1}
	stats := map[string]*AnalyzerStat{}
	for _, a := range analyzers {
		st := &AnalyzerStat{Name: a.Name}
		stats[a.Name] = st
		report.Analyzers = append(report.Analyzers, AnalyzerStat{})
	}
	known := knownAnalyzerNames()
	for _, pkg := range pkgs {
		allow, directives := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, d := range directives {
			for _, n := range d.names {
				if !known[n] {
					report.Findings = append(report.Findings, Finding{
						Analyzer: "lint",
						Pos:      pkg.Fset.Position(d.pos),
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q: the directive suppresses nothing", n),
					})
				}
			}
		}
		for _, a := range analyzers {
			stat := stats[a.Name]
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allow.allows(a.Name, pos) {
					stat.Suppressions++
					return
				}
				stat.Findings++
				report.Findings = append(report.Findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			start := time.Now()
			err := a.Run(pass)
			stat.WallMS += float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for i, a := range analyzers {
		report.Analyzers[i] = *stats[a.Name]
	}
	sortFindings(report.Findings)
	return report, nil
}

func sortFindings(fs []Finding) {
	// Position order makes output stable across runs and analyzers.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls (function values, interface methods resolve to their declared
// *types.Func, which is what the analyzers want).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// hasPathSuffix reports whether pkg path matches suffix on a path
// boundary, so testdata packages with fabricated prefixes participate.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
