// Package lint is relaylint: a project-specific static-analysis suite
// enforcing the invariants the test suite can only spot-check — pooled
// message lifecycles (poolcheck), dataset determinism (determinism),
// atomic-field access discipline (atomicfield), epoch-published map
// immutability (epochcheck) and enum switch coverage (exhaustive).
//
// The suite is deliberately dependency-free: it mirrors the
// golang.org/x/tools/go/analysis Analyzer/Pass shape on the standard
// library alone, loading type information through `go list -export`
// and the gc export-data importer, so `go run ./cmd/relaylint ./...`
// needs nothing beyond the toolchain that builds the repo.
//
// Suppression: a finding is silenced by a `//lint:allow <analyzer>`
// comment on the flagged line or the line directly above it. Multiple
// analyzers may be listed comma-separated; anything after the analyzer
// list is a free-form justification, which the convention requires.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// modulePath scopes project-specific rules (enum sets, deterministic
// packages) to this repository's types.
const modulePath = "github.com/relay-networks/privaterelay"

// dnswirePath identifies the pooled-message package poolcheck guards.
const dnswirePath = modulePath + "/internal/dnswire"

// An Analyzer is one lint pass. The shape mirrors
// golang.org/x/tools/go/analysis so the passes could migrate to a
// multichecker unchanged if the dependency ever lands.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic as printed by cmd/relaylint.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the full relaylint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Poolcheck, Determinism, Atomicfield, Epochcheck, Exhaustive}
}

// RunAnalyzers applies each analyzer to each package and returns the
// unsuppressed findings, sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allow.allows(a.Name, pos) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	// Position order makes output stable across runs and analyzers.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls (function values, interface methods resolve to their declared
// *types.Func, which is what the analyzers want).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// hasPathSuffix reports whether pkg path matches suffix on a path
// boundary, so testdata packages with fabricated prefixes participate.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
