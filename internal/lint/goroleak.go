package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goroleak guards the goroutine trees of the serving plane and the
// daemon (masque, relayd, epochmap): every `go` statement must carry
// provable termination evidence —
//
//   - a WaitGroup join: the goroutine calls wg.Done and a matching
//     wg.Add is pending on every path reaching the go statement
//     (unbalanced counts are their own finding);
//   - or a shutdown signal: each infinite loop in the body selects on
//     ctx.Done() or a quit/stop/done channel;
//   - or no infinite loop at all (a straight-line body terminates).
//
// Spawned function literals and same-package named functions are
// analyzed; dynamic targets are conservatively skipped. A goroutine
// closure that captures a pooled object (dnswire message, masque frame)
// it did not acquire must release it — captures of values acquired in
// the spawning function are poolcheck's domain.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in masque, relayd and epochmap needs a provable " +
		"termination path: a matched wg.Add/Done pair, a ctx.Done()/quit-channel " +
		"select in its loops, or a loop-free body",
	Run: runGoroleak,
}

// goroleakPkgs are the guarded packages (module-relative suffixes).
var goroleakPkgs = []string{
	"internal/masque",
	"internal/relayd",
	"internal/epochmap",
}

// quitChannelWords mark a channel as a shutdown signal by name.
var quitChannelWords = []string{"quit", "stop", "done", "closing", "shutdown", "cancel"}

func runGoroleak(pass *Pass) error {
	guarded := false
	for _, suffix := range goroleakPkgs {
		if hasPathSuffix(pass.Pkg.Path(), suffix) {
			guarded = true
		}
	}
	if !guarded {
		return nil
	}
	gr := &goroleakRun{
		pass:  pass,
		rel:   findReleasers(pass),
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				gr.decls[fnOrigin(fn)] = fd
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			gr.checkFunc(fd)
		}
	}
	return nil
}

// wgState maps each WaitGroup object to the Add count guaranteed to be
// pending on every path reaching the current point. wgUnknown marks a
// non-constant Add.
type wgState map[*types.Var]int

const wgUnknown = 1 << 30

func mergeWgState(a, b wgState) wgState {
	out := wgState{}
	for k, av := range a {
		if bv, ok := b[k]; ok {
			if bv < av {
				out[k] = bv
			} else {
				out[k] = av
			}
		}
	}
	return out
}

type goroleakRun struct {
	pass  *Pass
	rel   releaserSet
	decls map[*types.Func]*ast.FuncDecl
}

// checkFunc walks fd, tracking pending wg.Add counts path-sensitively
// and judging each go statement at its spawn point. Function literals
// other than direct go bodies are walked as independent functions (they
// may themselves spawn).
func (gr *goroleakRun) checkFunc(fd *ast.FuncDecl) {
	gr.walkBody(fd, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				gr.walkBody(fd, fl.Body) // a goroutine body may spawn again
				return false
			}
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			gr.walkBody(fd, fl.Body)
			return false
		}
		return true
	})
}

func (gr *goroleakRun) walkBody(fd *ast.FuncDecl, body *ast.BlockStmt) {
	eng := newFlowEngine(flowHooks[wgState]{
		merge: mergeWgState,
		transfer: func(stmt ast.Stmt, st wgState, _ *flowCtx) wgState {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if wg, n := gr.wgAdd(call); wg != nil {
						out := cloneWg(st)
						if n == wgUnknown || out[wg] >= wgUnknown {
							out[wg] = wgUnknown
						} else {
							out[wg] += n
						}
						return out
					}
				}
			case *ast.GoStmt:
				return gr.applyGo(fd, s, st)
			}
			return st
		},
		onReturn: func(_ *ast.ReturnStmt, st wgState) wgState { return st },
	})
	eng.walkBody(body, wgState{})
}

func cloneWg(st wgState) wgState {
	out := wgState{}
	for k, v := range st {
		out[k] = v
	}
	return out
}

// wgAdd recognizes wg.Add(n) and returns the WaitGroup object and the
// literal count (wgUnknown for non-constant arguments).
func (gr *goroleakRun) wgAdd(call *ast.CallExpr) (*types.Var, int) {
	fn := calleeFunc(gr.pass.Info, call)
	if !isWaitGroupMethod(fn, "Add") || len(call.Args) != 1 {
		return nil, 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	wg := gr.wgObject(sel.X)
	if wg == nil {
		return nil, 0
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
		n := 0
		for _, ch := range lit.Value {
			if ch < '0' || ch > '9' {
				return wg, wgUnknown
			}
			n = n*10 + int(ch-'0')
		}
		return wg, n
	}
	return wg, wgUnknown
}

// wgObject resolves the variable (field, local or parameter) holding
// the WaitGroup behind expr.
func (gr *goroleakRun) wgObject(expr ast.Expr) *types.Var {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return fieldOf(gr.pass.Info, x)
	case *ast.Ident:
		obj := gr.pass.Info.Uses[x]
		if obj == nil {
			obj = gr.pass.Info.Defs[x]
		}
		v, _ := obj.(*types.Var)
		return v
	}
	return nil
}

func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// applyGo judges one go statement with the pending-Add state at its
// spawn point and consumes one Add per joined goroutine.
func (gr *goroleakRun) applyGo(fd *ast.FuncDecl, g *ast.GoStmt, st wgState) wgState {
	body := gr.spawnedBody(g.Call)
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		gr.checkPooledCaptures(fd, g, fl)
	}
	if body == nil {
		return st // dynamic or cross-package target: conservatively skipped
	}
	dones := gr.doneTargets(body)
	if len(dones) > 0 {
		out := cloneWg(st)
		for _, wg := range dones {
			if out[wg] >= 1 {
				if out[wg] < wgUnknown {
					out[wg]--
				}
			} else {
				gr.pass.Reportf(g.Pos(),
					"goroutine calls Done on a WaitGroup with no Add pending at this go statement (unbalanced wg.Add count)")
			}
		}
		return out
	}
	for _, loop := range infiniteLoops(body) {
		if !gr.loopHasExitSignal(loop) {
			gr.pass.Reportf(g.Pos(),
				"goroutine has no provable termination path: its loop selects no ctx.Done()/quit channel and no wg.Add/Done pair joins it")
			return st
		}
	}
	return st
}

// spawnedBody resolves the body the go statement runs: a function
// literal's own body, or the declaration of a same-package function or
// method.
func (gr *goroleakRun) spawnedBody(call *ast.CallExpr) *ast.BlockStmt {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	fn := calleeFunc(gr.pass.Info, call)
	if fn == nil || fn.Pkg() != gr.pass.Pkg {
		return nil
	}
	if fd := gr.decls[fnOrigin(fn)]; fd != nil {
		return fd.Body
	}
	return nil
}

// doneTargets collects the WaitGroup objects the body calls Done on
// (directly or deferred), excluding nested function literals.
func (gr *goroleakRun) doneTargets(body *ast.BlockStmt) []*types.Var {
	var out []*types.Var
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(gr.pass.Info, call)
		if !isWaitGroupMethod(fn, "Done") {
			return
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if wg := gr.wgObject(sel.X); wg != nil {
				out = append(out, wg)
			}
		}
	})
	return out
}

// infiniteLoops returns the `for {}`-style loops (no condition) in
// body, excluding nested function literals. Range loops terminate when
// their operand does (range over a channel ends on close), and
// condition loops carry their own exit.
func infiniteLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			out = append(out, fs)
		}
	})
	return out
}

// loopHasExitSignal reports whether loop's body receives from
// ctx.Done() or a quit-named channel (in a select case or a direct
// receive), giving the goroutine a shutdown path.
func (gr *goroleakRun) loopHasExitSignal(loop *ast.ForStmt) bool {
	found := false
	inspectSkippingFuncLits(loop.Body, func(n ast.Node) {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op.String() != "<-" {
			return
		}
		if gr.isExitChannel(ue.X) {
			found = true
		}
	})
	return found
}

// isExitChannel recognizes ctx.Done() and channels whose name suggests
// a shutdown signal.
func (gr *goroleakRun) isExitChannel(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(gr.pass.Info, x)
		return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
	case *ast.SelectorExpr:
		return isQuitName(x.Sel.Name)
	case *ast.Ident:
		return isQuitName(x.Name)
	}
	return false
}

func isQuitName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range quitChannelWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// checkPooledCaptures flags a goroutine closure holding a pooled object
// it neither acquired (poolcheck's domain) nor releases: the pool will
// recycle the value under the goroutine.
func (gr *goroleakRun) checkPooledCaptures(fd *ast.FuncDecl, g *ast.GoStmt, fl *ast.FuncLit) {
	acquired := map[types.Object]bool{}
	for _, site := range acquireSites(gr.pass, fd) {
		acquired[site.obj] = true
	}
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := gr.pass.Info.Uses[id]
		if obj == nil || seen[obj] || acquired[obj] {
			return true
		}
		// Captured, not declared inside the literal.
		if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
			return true
		}
		api := poolAPIForType(obj.Type())
		if api == nil {
			return true
		}
		seen[obj] = true
		if !gr.closureReleases(fl, obj) {
			gr.pass.Reportf(g.Pos(),
				"goroutine captures pooled %s %s without releasing it (pair with %s.%s inside the goroutine or transfer ownership explicitly)",
				api.noun, obj.Name(), api.pkgName, api.release)
		}
		return true
	})
}

// closureReleases reports whether fl's body hands obj back to its pool,
// directly or through a same-package releasing callee.
func (gr *goroleakRun) closureReleases(fl *ast.FuncLit, obj types.Object) bool {
	released := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || released {
			return !released
		}
		if i := releasingArgIndex(gr.pass, gr.rel, call); i >= 0 && i < len(call.Args) {
			if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && gr.pass.Info.Uses[id] == obj {
				released = true
			}
		}
		return true
	})
	return released
}
