package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolcheck enforces the sync.Pool ownership discipline the
// zero-allocation hot paths depend on, for every registered pool API
// (the dnswire message pool and the masque frame pool):
//
//   - every Acquire result is released on all control-flow paths — by
//     the pool's Release directly or via a (possibly same-package)
//     callee that releases its parameter — or explicitly handed to the
//     caller by returning it;
//   - a pooled value is never used after Release, and never released
//     twice;
//   - a pooled value is never stored into a struct field, global or
//     container, which would let the pool recycle it behind a retained
//     reference;
//   - a `go` closure capturing an acquired value takes over ownership
//     and must itself release on every path, and a deferred release
//     inside the loop that acquired does not run per iteration.
//
// The analysis is per-function with same-package interprocedural
// release tracking, built on the shared flow engine in cfg.go.
// Acquired values captured by closures other than direct `go` bodies
// are skipped (conservatively unchecked) rather than misreported.
var Poolcheck = &Analyzer{
	Name: "poolcheck",
	Doc: "pool Acquire functions (dnswire.AcquireMessage, masque.AcquireFrame) " +
		"must be paired with their Release on every path, with no use after " +
		"release and no stores of pooled values",
	Run: runPoolcheck,
}

// poolAPI describes one acquire/release pair under the discipline.
type poolAPI struct {
	pkgSuffix string // import-path suffix identifying the pool package
	pkgName   string // short name used in diagnostics
	acquire   string
	release   string
	noun      string // what the pool recycles, for diagnostics
}

// poolAPIs is the registry poolcheck guards. New pools following the
// dnswire provenance-flag pattern are added here.
var poolAPIs = []poolAPI{
	{pkgSuffix: "internal/dnswire", pkgName: "dnswire", acquire: "AcquireMessage", release: "ReleaseMessage", noun: "message"},
	{pkgSuffix: "internal/masque", pkgName: "masque", acquire: "AcquireFrame", release: "ReleaseFrame", noun: "frame"},
}

// poolAPIForAcquire returns the pool API fn acquires from, if any.
func poolAPIForAcquire(fn *types.Func) *poolAPI {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for i := range poolAPIs {
		api := &poolAPIs[i]
		if fn.Name() == api.acquire && hasPathSuffix(fn.Pkg().Path(), api.pkgSuffix) {
			return api
		}
	}
	return nil
}

// poolAPIForRelease returns the pool API fn releases into, if any.
func poolAPIForRelease(fn *types.Func) *poolAPI {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for i := range poolAPIs {
		api := &poolAPIs[i]
		if fn.Name() == api.release && hasPathSuffix(fn.Pkg().Path(), api.pkgSuffix) {
			return api
		}
	}
	return nil
}

// poolType reports whether t is (a pointer to) one of the pooled types,
// for goroleak's capture rule.
func poolAPIForType(t types.Type) *poolAPI {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	for i := range poolAPIs {
		api := &poolAPIs[i]
		if hasPathSuffix(named.Obj().Pkg().Path(), api.pkgSuffix) &&
			(named.Obj().Name() == "Message" || named.Obj().Name() == "Frame") {
			return api
		}
	}
	return nil
}

func runPoolcheck(pass *Pass) error {
	rel := findReleasers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd, rel)
		}
	}
	return nil
}

// releaserSet maps a function to the parameter indices it releases
// (directly or through another releaser) on some path.
type releaserSet map[*types.Func]map[int]bool

// findReleasers computes, to a fixpoint, which functions in this
// package hand a parameter back to the message pool. This is what makes
// the acquire-here/release-in-callee pattern check out.
func findReleasers(pass *Pass) releaserSet {
	rel := releaserSet{}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			params := paramObjs(pass, fd)
			for idx, p := range params {
				if rel[fn][idx] || p == nil {
					continue
				}
				released := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || released {
						return !released
					}
					if i := releasingArgIndex(pass, rel, call); i >= 0 && i < len(call.Args) {
						if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && pass.Info.Uses[id] == p {
							released = true
						}
					}
					return true
				})
				if released {
					if rel[fn] == nil {
						rel[fn] = map[int]bool{}
					}
					rel[fn][idx] = true
					changed = true
				}
			}
		}
	}
	return rel
}

// paramObjs returns the declared parameter objects of fd in order.
func paramObjs(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, pass.Info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter can never be released
		}
	}
	return out
}

// releasingArgIndex reports which argument position of call is released
// by the callee: 0 for a pool Release function itself, the releasing
// parameter index for a same-package releaser, -1 otherwise.
func releasingArgIndex(pass *Pass, rel releaserSet, call *ast.CallExpr) int {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return -1
	}
	if poolAPIForRelease(fn) != nil {
		return 0
	}
	for idx := range rel[fn] {
		return idx // one releasing parameter is the practical case
	}
	return -1
}

// acquireAPI returns the pool API behind call when it is an Acquire.
func acquireAPI(pass *Pass, call *ast.CallExpr) *poolAPI {
	return poolAPIForAcquire(calleeFunc(pass.Info, call))
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl, rel releaserSet) {
	// Rule: an acquire whose result is discarded leaks immediately.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			if api := acquireAPI(pass, call); api != nil {
				pass.Reportf(call.Pos(), "result of %s.%s discarded: the %s leaks from the pool",
					api.pkgName, api.acquire, api.noun)
			}
		}
		return true
	})

	// Track each `v := Acquire...()` through the function. Captures by a
	// closure that is the direct body of a `go` statement transfer
	// ownership and are analyzed in the walker; any other closure
	// capture is conservatively unchecked rather than misreported.
	for _, site := range acquireSites(pass, fd) {
		if capturedByOtherClosure(pass, fd, site.obj) {
			continue
		}
		w := &poolWalker{pass: pass, rel: rel, v: site.obj, acquire: site.stmt, api: site.api, seen: map[token.Pos]bool{}}
		st, _ := w.engine().walkBody(fd.Body, pstate{untracked: true})
		if st.live && !st.deferRel {
			w.leak = true
		}
		if w.leak {
			api := site.api
			pass.Reportf(site.stmt.Pos(),
				"%s %s from %s.%s is not released on every path (pair it with %s.%s, hand it to a releasing callee, or return it)",
				api.noun, site.obj.Name(), api.pkgName, api.acquire, api.pkgName, api.release)
		}
	}

	// Straight-line use-after-release and double-release, for every
	// released variable — including ones this function never acquired.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		scanBlockAfterRelease(pass, block)
		return true
	})
}

type acquireSite struct {
	stmt *ast.AssignStmt
	obj  types.Object
	api  *poolAPI
}

func acquireSites(pass *Pass, fd *ast.FuncDecl) []acquireSite {
	var out []acquireSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		api := acquireAPI(pass, call)
		if api == nil {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			out = append(out, acquireSite{stmt: as, obj: obj, api: api})
		}
		return true
	})
	return out
}

// capturedByOtherClosure reports whether v is captured by any closure
// that is not the direct function of a `go` statement. Those captures
// are beyond the per-function analysis (the closure may run any number
// of times, later); go-statement bodies are handled precisely by the
// walker's ownership transfer.
func capturedByOtherClosure(pass *Pass, fd *ast.FuncDecl, v types.Object) bool {
	goBodies := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goBodies[fl] = true
			}
		}
		return true
	})
	captured := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || captured {
			return !captured
		}
		if goBodies[fl] {
			return true // descend: an inner, non-go closure still disqualifies
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == v {
				captured = true
			}
			return !captured
		})
		return false
	})
	return captured
}

// pstate is the set of states the tracked message may be in on the
// paths reaching a program point.
type pstate struct {
	untracked bool // before the acquire ran (or after reassignment)
	live      bool // acquired, not yet released
	released  bool // handed back to the pool
	escaped   bool // ownership transferred (returned / releasing callee / given up)
	deferRel  bool // a deferred release covers every later exit
}

func mergeState(a, b pstate) pstate {
	return pstate{
		untracked: a.untracked || b.untracked,
		live:      a.live || b.live,
		released:  a.released || b.released,
		escaped:   a.escaped || b.escaped,
		deferRel:  a.deferRel && b.deferRel,
	}
}

// poolWalker carries the per-variable facts; the control flow itself is
// the shared engine's. It is deliberately approximate: merges are
// unions, loops run at most once, goto gives up — tuned so that every
// report is a genuine "some path leaks/misuses" and quiet code stays
// quiet.
type poolWalker struct {
	pass    *Pass
	rel     releaserSet
	v       types.Object
	acquire *ast.AssignStmt
	api     *poolAPI
	leak    bool
	seen    map[token.Pos]bool
}

func (w *poolWalker) engine() *flowEngine[pstate] {
	return newFlowEngine(flowHooks[pstate]{
		merge:    mergeState,
		transfer: w.transfer,
		onReturn: w.onReturn,
		onGoto: func(st pstate) pstate {
			st.escaped, st.live, st.untracked, st.released = true, false, false, false
			return st
		},
		foldLoop: w.foldLoop,
	})
}

func (w *poolWalker) transfer(stmt ast.Stmt, st pstate, fc *flowCtx) pstate {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		if s == w.acquire {
			return pstate{live: true, deferRel: st.deferRel}
		}
		w.checkStore(s, st)
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && w.isV(id) {
				// v rebound: the old value's fate was decided above.
				return pstate{untracked: true, deferRel: st.deferRel}
			}
		}
		return st

	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return st
		}
		return w.applyCall(call, st)

	case *ast.DeferStmt:
		if i := releasingArgIndex(w.pass, w.rel, s.Call); i >= 0 && i < len(s.Call.Args) {
			if id, ok := ast.Unparen(s.Call.Args[i]).(*ast.Ident); ok && w.isV(id) {
				if fc.InLoop() && !w.seen[s.Pos()] {
					// A defer never runs per iteration: with the acquire in
					// the same loop the value stays live until return; with
					// the acquire outside, each iteration stacks another
					// release of the same value.
					w.seen[s.Pos()] = true
					w.pass.Reportf(s.Pos(),
						"deferred release of %s %s inside a loop runs at function exit, not per iteration; release it at the end of the iteration instead",
						w.api.noun, w.v.Name())
				}
				st.deferRel = true
			}
		}
		return st

	case *ast.GoStmt:
		return w.applyGo(s, st)

	default:
		return st
	}
}

func (w *poolWalker) onReturn(s *ast.ReturnStmt, st pstate) pstate {
	for _, res := range s.Results {
		if w.exprMentionsV(res) {
			st.escaped, st.live, st.untracked = true, false, false
			return st
		}
	}
	if st.live && !st.deferRel {
		w.leak = true
	}
	return st
}

// foldLoop merges break/continue exits and the back edge. A message
// acquired inside the body must be dead by the end of each iteration;
// infinite loops (for{}) have no zero-iteration path.
func (w *poolWalker) foldLoop(body *ast.BlockStmt, st pstate, exits []pstate, endSt pstate, term, infinite bool) pstate {
	acquiredInside := w.acquire != nil && body.Pos() <= w.acquire.Pos() && w.acquire.Pos() < body.End()
	out := st
	if infinite {
		out = pstate{deferRel: st.deferRel} // only breaks leave a for{}
		if len(exits) == 0 && !term {
			out = endSt // degenerate: falls out via panics only; keep something sane
		}
	}
	states := exits
	if !term {
		states = append(states, endSt)
	}
	for _, s := range states {
		if acquiredInside && s.live && !s.deferRel {
			// Back edge or loop exit with a live per-iteration message.
			w.leak = true
		}
		if !infinite || !acquiredInside {
			out = mergeState(out, s)
		}
	}
	if acquiredInside {
		// Whatever happened inside, the per-iteration variable is out of
		// scope after the loop.
		out.live = false
		out.untracked = true
	}
	return out
}

// applyCall folds one call statement into the state: release, transfer
// to a releasing callee, or no effect.
func (w *poolWalker) applyCall(call *ast.CallExpr, st pstate) pstate {
	if i := releasingArgIndex(w.pass, w.rel, call); i >= 0 && i < len(call.Args) {
		if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && w.isV(id) {
			if poolAPIForRelease(calleeFunc(w.pass.Info, call)) != nil {
				return pstate{released: true, deferRel: st.deferRel}
			}
			return pstate{escaped: true, deferRel: st.deferRel}
		}
	}
	return st
}

// applyGo folds a go statement: `go Release(v)` (or a releasing callee)
// hands the value to the goroutine, and a `go func(){...}` body that
// captures v — or receives it as an argument — takes over ownership and
// is itself walked for release-on-every-path.
func (w *poolWalker) applyGo(s *ast.GoStmt, st pstate) pstate {
	call := s.Call
	if i := releasingArgIndex(w.pass, w.rel, call); i >= 0 && i < len(call.Args) {
		if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && w.isV(id) {
			return pstate{escaped: true, deferRel: st.deferRel}
		}
	}
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok || !st.live {
		return st
	}
	// Identify what the goroutine sees: v captured free, or v passed as
	// an argument bound to a parameter.
	tracked := types.Object(nil)
	if w.exprMentionsV(fl) {
		tracked = w.v
	}
	params := funcLitParams(w.pass, fl)
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && w.isV(id) && i < len(params) && params[i] != nil {
			tracked = params[i]
		}
	}
	if tracked == nil {
		return st
	}
	// Ownership moves to the goroutine: walk its body as a function with
	// the value live on entry.
	sub := &poolWalker{pass: w.pass, rel: w.rel, v: tracked, api: w.api, seen: w.seen}
	end, term := sub.engine().walkBody(fl.Body, pstate{live: true})
	if !term && end.live && !end.deferRel {
		sub.leak = true
	}
	if sub.leak {
		w.pass.Reportf(s.Pos(),
			"%s %s is captured by this goroutine, which does not release it on every path (pair it with %s.%s or return-free the goroutine)",
			w.api.noun, w.v.Name(), w.api.pkgName, w.api.release)
	}
	return pstate{escaped: true, deferRel: st.deferRel}
}

// funcLitParams returns the declared parameter objects of fl in order.
func funcLitParams(pass *Pass, fl *ast.FuncLit) []types.Object {
	var out []types.Object
	if fl.Type.Params == nil {
		return nil
	}
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, pass.Info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil)
		}
	}
	return out
}

// checkStore reports rule 3: a live pooled message stored into a struct
// field, global or container outlives its pool lifetime.
func (w *poolWalker) checkStore(as *ast.AssignStmt, st pstate) {
	if !st.live {
		return
	}
	for i, rhs := range as.Rhs {
		if !w.exprMentionsV(rhs) || i >= len(as.Lhs) {
			continue
		}
		var what string
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.SelectorExpr:
			if f := fieldOf(w.pass.Info, lhs); f != nil {
				what = "struct field " + f.Name()
			}
		case *ast.IndexExpr:
			what = "a map or slice element"
		case *ast.Ident:
			if obj := w.pass.Info.Uses[lhs]; obj != nil && obj.Parent() == w.pass.Pkg.Scope() {
				what = "package-level variable " + lhs.Name
			}
		}
		if what != "" && !w.seen[as.Pos()] {
			w.seen[as.Pos()] = true
			w.pass.Reportf(as.Pos(),
				"pooled %s %s stored in %s: the pool will recycle it behind this reference",
				w.api.noun, w.v.Name(), what)
		}
	}
}

func (w *poolWalker) isV(id *ast.Ident) bool {
	return w.pass.Info.Uses[id] == w.v || w.pass.Info.Defs[id] == w.v
}

func (w *poolWalker) exprMentionsV(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.isV(id) {
			found = true
		}
		return !found
	})
	return found
}

// scanBlockAfterRelease reports straight-line uses of a variable after
// a pool Release(v) in the same block, including double releases.
// Tracking stops at a rebinding of v.
func scanBlockAfterRelease(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		api := poolAPIForRelease(calleeFunc(pass.Info, call))
		if api == nil || len(call.Args) != 1 {
			continue
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			continue
		}
		v := pass.Info.Uses[id]
		if v == nil {
			continue
		}
		scanUsesAfter(pass, block.List[i+1:], v, api)
	}
}

func scanUsesAfter(pass *Pass, stmts []ast.Stmt, v types.Object, api *poolAPI) {
	for _, stmt := range stmts {
		if as, ok := stmt.(*ast.AssignStmt); ok {
			rebound := false
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok &&
					(pass.Info.Uses[id] == v || pass.Info.Defs[id] == v) {
					rebound = true
				}
			}
			// The RHS still runs with the released value.
			for _, rhs := range as.Rhs {
				if reportUse(pass, rhs, v, api) {
					return
				}
			}
			if rebound {
				return
			}
			continue
		}
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				if poolAPIForRelease(calleeFunc(pass.Info, call)) != nil && len(call.Args) == 1 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[id] == v {
						pass.Reportf(call.Pos(), "%s %s released twice", api.noun, v.Name())
						return
					}
				}
			}
		}
		if reportUse(pass, stmt, v, api) {
			return
		}
	}
}

func reportUse(pass *Pass, n ast.Node, v types.Object, api *poolAPI) bool {
	reported := false
	ast.Inspect(n, func(m ast.Node) bool {
		if reported {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			pass.Reportf(id.Pos(), "use of %s %s after %s.%s", api.noun, v.Name(), api.pkgName, api.release)
			reported = true
		}
		return !reported
	})
	return reported
}
