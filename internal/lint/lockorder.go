package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockorder guards the locking discipline of the serving plane and the
// daemon (masque, relayd, epochmap), where PRs 7–9 introduced sharded
// mutexes whose critical sections must stay tiny:
//
//   - a mutex field annotated `//lint:shardlock` is a leaf lock: while
//     it is held no other lock may be acquired and no blocking
//     operation (I/O method, channel send/recv, blocking select,
//     Sleep/Wait, `Exchange`) may run — directly or via a same-package
//     callee;
//   - `//lint:lockorder A.mu < B.mu` declares acquisition order:
//     acquiring A.mu while B.mu is held is a finding;
//   - acquiring a lock already held is a self-deadlock finding;
//   - every lock acquired in a function must be released (or deferred)
//     on every control-flow path out of it.
//
// A function whose doc carries `//lint:callback-holds <class>` declares
// that function-literal arguments passed to it run with that lock held
// (Sharded.Range is the canonical case); the literals are then checked
// under the seeded lock set. Calls through function values or
// interfaces are not followed — a documented blind spot shared with the
// rest of the suite.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce shard-lock leaf discipline, declared lock acquisition order, " +
		"and release-on-every-path in masque, relayd and epochmap",
	Run: runLockorder,
}

// lockorderPkgs are the guarded packages (module-relative suffixes).
var lockorderPkgs = []string{
	"internal/masque",
	"internal/relayd",
	"internal/epochmap",
}

// blockingMethodNames are method names that, on a receiver from another
// package, are assumed to perform I/O or otherwise block.
var blockingMethodNames = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true, "ReadMsgUDP": true,
	"Accept": true, "Close": true, "CloseRead": true, "CloseWrite": true,
	"Exchange": true, "Serve": true, "Dial": true, "DialContext": true,
	"Flush": true, "Shutdown": true, "Wait": true, "Sleep": true,
	"Recv": true, "Send": true,
}

// blockingIOFuncs are package-level io functions that block on their
// reader/writer arguments.
var blockingIOFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadFull": true,
	"ReadAll": true, "WriteString": true,
}

func runLockorder(pass *Pass) error {
	guarded := false
	for _, suffix := range lockorderPkgs {
		if hasPathSuffix(pass.Pkg.Path(), suffix) {
			guarded = true
		}
	}
	if !guarded {
		return nil
	}
	lo := &lockorderRun{
		pass:      pass,
		shard:     map[string]bool{},
		order:     map[[2]string]bool{},
		callbacks: map[*types.Func][]string{},
		seen:      map[string]bool{},
	}
	lo.collectDecls()
	lo.buildSummaries()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo.checkFunc(fd)
		}
	}
	return nil
}

// heldLock is one entry of the abstract held-lock set.
type heldLock struct {
	key      string
	shard    bool
	deferred bool // a deferred unlock covers function exit
	seeded   bool // held by the caller (callback-holds), not acquired here
	pos      token.Pos
}

type lockState struct {
	held []heldLock
}

func mergeLockState(a, b lockState) lockState {
	out := lockState{held: append([]heldLock(nil), a.held...)}
	for _, h := range b.held {
		found := false
		for _, g := range out.held {
			if g.key == h.key {
				found = true
				break
			}
		}
		if !found {
			out.held = append(out.held, h)
		}
	}
	return out
}

// fnSummary is the flow-insensitive effect summary of a same-package
// function: the lock classes it may acquire and whether it may block.
type fnSummary struct {
	locks  map[string]bool
	blocks bool
}

type lockorderRun struct {
	pass      *Pass
	shard     map[string]bool          // lock class → declared shard leaf
	order     map[[2]string]bool       // {before, after} declared pairs
	callbacks map[*types.Func][]string // fn origin → classes its FuncLit args run under
	summaries map[*types.Func]*fnSummary
	seen      map[string]bool // report dedup
}

// collectDecls gathers the three directive forms: shardlock field
// annotations, lockorder chains, and callback-holds function docs.
func (lo *lockorderRun) collectDecls() {
	for _, file := range lo.pass.Files {
		// //lint:shardlock on a struct's mutex field.
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !commentHasMarker(f.Doc, "lint:shardlock") && !commentHasMarker(f.Comment, "lint:shardlock") {
					continue
				}
				for _, name := range f.Names {
					lo.shard[ts.Name.Name+"."+name.Name] = true
				}
			}
			return true
		})
		// //lint:lockorder A.mu < B.mu [< C.mu ...] anywhere in the file.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:lockorder") {
					continue
				}
				chain := strings.Split(strings.TrimSpace(strings.TrimPrefix(text, "lint:lockorder")), "<")
				for i := 0; i+1 < len(chain); i++ {
					before := strings.TrimSpace(chain[i])
					after := strings.TrimSpace(chain[i+1])
					if before != "" && after != "" {
						lo.order[[2]string{before, after}] = true
					}
				}
			}
		}
		// //lint:callback-holds <class> in a function doc.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:callback-holds") {
					continue
				}
				class := strings.TrimSpace(strings.TrimPrefix(text, "lint:callback-holds"))
				if class == "" {
					continue
				}
				if fn, ok := lo.pass.Info.Defs[fd.Name].(*types.Func); ok {
					lo.callbacks[fnOrigin(fn)] = append(lo.callbacks[fnOrigin(fn)], class)
				}
			}
		}
	}
}

func commentHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), marker) {
			return true
		}
	}
	return false
}

// buildSummaries computes, to a fixpoint, the may-lock/may-block effect
// of every same-package function. Function literals are excluded: they
// run when invoked, not when their enclosing function does.
func (lo *lockorderRun) buildSummaries() {
	lo.summaries = map[*types.Func]*fnSummary{}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := lo.pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fnOrigin(fn)] = fd
				lo.summaries[fnOrigin(fn)] = &fnSummary{locks: map[string]bool{}}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			sum := lo.summaries[fn]
			inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
				switch n := n.(type) {
				case *ast.CallExpr:
					if key, op := lo.mutexOp(n); op == lockAcquire && key != "" && !sum.locks[key] {
						sum.locks[key] = true
						changed = true
					}
					if !sum.blocks && lo.blockingDesc(n) != "" {
						sum.blocks = true
						changed = true
					}
					if callee := lo.samePkgCallee(n); callee != nil {
						if csum, ok := lo.summaries[callee]; ok && csum != sum {
							for k := range csum.locks {
								if !sum.locks[k] {
									sum.locks[k] = true
									changed = true
								}
							}
							if csum.blocks && !sum.blocks {
								sum.blocks = true
								changed = true
							}
						}
					}
				case *ast.SendStmt:
					if !sum.blocks {
						sum.blocks = true
						changed = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !sum.blocks {
						sum.blocks = true
						changed = true
					}
				}
			})
		}
	}
}

// inspectSkippingFuncLits visits every node in body except those inside
// nested function literals.
func inspectSkippingFuncLits(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

type mutexOpKind int

const (
	lockNone mutexOpKind = iota
	lockAcquire
	lockRelease
)

// mutexOp classifies call as a sync.Mutex/RWMutex acquire or release
// and returns the lock class key ("Type.field" or a bare identifier).
func (lo *lockorderRun) mutexOp(call *ast.CallExpr) (string, mutexOpKind) {
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", lockNone
	}
	recvType := sig.Recv().Type()
	if ptr, ok := recvType.(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	named, ok := recvType.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", lockNone
	}
	var kind mutexOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone // TryLock and friends: not tracked
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	return lo.lockClass(sel.X), kind
}

// lockClass names the mutex behind expr: "OwnerType.field" for a field
// selection, the identifier name otherwise, "" when unresolvable.
func (lo *lockorderRun) lockClass(expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		f := fieldOf(lo.pass.Info, x)
		if f == nil {
			return ""
		}
		t := lo.pass.Info.TypeOf(x.X)
		for {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	case *ast.Ident:
		return x.Name
	}
	return ""
}

// samePkgCallee resolves call to a function declared in this package.
func (lo *lockorderRun) samePkgCallee(call *ast.CallExpr) *types.Func {
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() != lo.pass.Pkg {
		return nil
	}
	return fnOrigin(fn)
}

// blockingDesc describes why call blocks, or "" when it does not. Only
// statically-resolved callees participate.
func (lo *lockorderRun) blockingDesc(call *ast.CallExpr) string {
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg()
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case pkg.Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case pkg.Path() == "io" && blockingIOFuncs[fn.Name()]:
		return "io." + fn.Name()
	case sig != nil && sig.Recv() != nil && pkg != lo.pass.Pkg && blockingMethodNames[fn.Name()]:
		if pkg.Path() == "sync" && fn.Name() != "Wait" {
			return ""
		}
		return pkg.Name() + " " + fn.Name() + " method"
	}
	return ""
}

// checkFunc walks fd's body with an empty held set, then every function
// literal in it: callback-holds literals under the declared seeded
// locks, all others (goroutine bodies, plain closures) as independent
// functions.
func (lo *lockorderRun) checkFunc(fd *ast.FuncDecl) {
	lo.walkBody(fd.Body, lockState{})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(lo.pass.Info, call)
		var classes []string
		if callee != nil {
			classes = lo.callbacks[fnOrigin(callee)]
		}
		for _, arg := range call.Args {
			fl, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			entry := lockState{}
			for _, class := range classes {
				entry.held = append(entry.held, heldLock{
					key: class, shard: lo.shard[class], seeded: true, pos: fl.Pos(),
				})
			}
			lo.walkBody(fl.Body, entry)
		}
		return true
	})
	// Remaining literals: go bodies, defers, assigned closures.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lo.walkBody(fl.Body, lockState{})
				return false
			}
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lo.walkBody(fl.Body, lockState{})
				return false
			}
		}
		return true
	})
}

func (lo *lockorderRun) walkBody(body *ast.BlockStmt, entry lockState) {
	eng := newFlowEngine(flowHooks[lockState]{
		merge:    mergeLockState,
		transfer: lo.transfer,
		onReturn: func(ret *ast.ReturnStmt, st lockState) lockState {
			lo.checkLeaks(st)
			return st
		},
		observeExpr: func(e ast.Expr, st lockState) {
			lo.checkExpr(e, &st)
		},
		observeSelect: func(sel *ast.SelectStmt, st lockState) {
			hasDefault := false
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				if h := shardHeld(st); h != nil {
					lo.reportOnce(sel.Pos(), "select",
						"select with no default case blocks while shard lock %s is held", h.key)
				}
			}
		},
	})
	end, term := eng.walkBody(body, entry)
	if !term {
		lo.checkLeaks(end)
	}
}

func shardHeld(st lockState) *heldLock {
	for i := range st.held {
		if st.held[i].shard {
			return &st.held[i]
		}
	}
	return nil
}

// checkLeaks reports locks acquired in this walk that may still be held
// at a function exit without a deferred unlock.
func (lo *lockorderRun) checkLeaks(st lockState) {
	for _, h := range st.held {
		if h.seeded || h.deferred {
			continue
		}
		lo.reportOnce(h.pos, "leak",
			"lock %s acquired here is not released on every path (unlock or defer the unlock)", h.key)
	}
}

// transfer folds one simple statement into the held set, checking each
// call and channel operation against the discipline in source order.
func (lo *lockorderRun) transfer(stmt ast.Stmt, st lockState, _ *flowCtx) lockState {
	if ds, ok := stmt.(*ast.DeferStmt); ok {
		if key, op := lo.mutexOp(ds.Call); op == lockRelease {
			for i := range st.held {
				if st.held[i].key == key {
					st.held[i].deferred = true
				}
			}
		}
		// The deferred call itself runs at exit; don't treat its callee
		// as executing here.
		return st
	}
	inspectSkippingFuncLits(stmt, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			st = lo.applyLockCall(n, st)
		case *ast.SendStmt:
			if h := shardHeld(st); h != nil {
				lo.reportOnce(n.Pos(), "send", "channel send blocks while shard lock %s is held", h.key)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if h := shardHeld(st); h != nil {
					lo.reportOnce(n.Pos(), "recv", "channel receive blocks while shard lock %s is held", h.key)
				}
			}
		}
	})
	return st
}

// checkExpr applies the call/channel checks to a condition expression
// the engine otherwise consumes.
func (lo *lockorderRun) checkExpr(e ast.Expr, st *lockState) {
	inspectSkippingFuncLits(e, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			*st = lo.applyLockCall(n, *st)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if h := shardHeld(*st); h != nil {
					lo.reportOnce(n.Pos(), "recv", "channel receive blocks while shard lock %s is held", h.key)
				}
			}
		}
	})
}

func (lo *lockorderRun) applyLockCall(call *ast.CallExpr, st lockState) lockState {
	key, op := lo.mutexOp(call)
	if op != lockNone && key == "" {
		return st // unresolvable mutex expression: not tracked
	}
	if op == lockAcquire {
		lo.checkAcquire(call.Pos(), key, st)
		st.held = append(append([]heldLock(nil), st.held...),
			heldLock{key: key, shard: lo.shard[key], pos: call.Pos()})
		return st
	}
	if op == lockRelease {
		out := lockState{}
		removed := false
		for i := len(st.held) - 1; i >= 0; i-- {
			if !removed && st.held[i].key == key {
				removed = true
				continue
			}
			out.held = append([]heldLock{st.held[i]}, out.held...)
		}
		return out
	}
	// Not a mutex op: check blocking and same-package lock effects.
	if desc := lo.blockingDesc(call); desc != "" {
		if h := shardHeld(st); h != nil {
			lo.reportOnce(call.Pos(), "block",
				"blocking call (%s) while shard lock %s is held", desc, h.key)
		}
	}
	if callee := lo.samePkgCallee(call); callee != nil {
		if sum, ok := lo.summaries[callee]; ok {
			if h := shardHeld(st); h != nil {
				if len(sum.locks) > 0 {
					lo.reportOnce(call.Pos(), "nest",
						"call to %s acquires a lock (%s) while shard lock %s is held (shard locks are leaves)",
						callee.Name(), firstKey(sum.locks), h.key)
				} else if sum.blocks {
					lo.reportOnce(call.Pos(), "block",
						"call to %s may block while shard lock %s is held", callee.Name(), h.key)
				}
			}
			for k := range sum.locks {
				lo.checkAcquiredAgainstHeld(call.Pos(), k, st, callee.Name())
			}
		}
	}
	return st
}

// checkAcquire validates a direct Lock() against the current held set.
func (lo *lockorderRun) checkAcquire(pos token.Pos, key string, st lockState) {
	for _, h := range st.held {
		if h.key == key {
			lo.reportOnce(pos, "self",
				"lock %s acquired while already held (self-deadlock)", key)
			return
		}
		if h.shard {
			lo.reportOnce(pos, "shardnest",
				"lock %s acquired while shard lock %s is held (shard locks are leaves)", key, h.key)
			return
		}
		if lo.order[[2]string{key, h.key}] {
			lo.reportOnce(pos, "order",
				"lock %s acquired while %s is held, violating declared order %s < %s",
				key, h.key, key, h.key)
			return
		}
	}
}

// checkAcquiredAgainstHeld applies the self/order rules to locks a
// same-package callee acquires (the shard-leaf rule is reported by the
// caller with a better message).
func (lo *lockorderRun) checkAcquiredAgainstHeld(pos token.Pos, key string, st lockState, callee string) {
	for _, h := range st.held {
		if h.shard {
			continue
		}
		if h.key == key {
			lo.reportOnce(pos, "self",
				"call to %s re-acquires lock %s already held (self-deadlock)", callee, key)
			return
		}
		if lo.order[[2]string{key, h.key}] {
			lo.reportOnce(pos, "order",
				"call to %s acquires %s while %s is held, violating declared order %s < %s",
				callee, key, h.key, key, h.key)
			return
		}
	}
}

func firstKey(m map[string]bool) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func (lo *lockorderRun) reportOnce(pos token.Pos, kind, format string, args ...any) {
	k := kind + "@" + lo.pass.Fset.Position(pos).String()
	if lo.seen[k] {
		return
	}
	lo.seen[k] = true
	lo.pass.Reportf(pos, format, args...)
}

// fnOrigin maps an instantiated generic function/method to its generic
// origin, so directive and summary lookups work across instantiations.
func fnOrigin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}
