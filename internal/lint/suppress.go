package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowIndex maps file → line → analyzer names allowed there. An allow
// comment covers its own line (trailing form) and the next line
// (own-line form), which is exactly the two placements the convention
// permits.
type allowIndex map[string]map[int][]string

const allowMarker = "lint:allow"

// allowDirective is one parsed //lint:allow comment, kept alongside the
// index so the suite can validate the analyzer names it cites.
type allowDirective struct {
	pos   token.Pos
	names []string
}

// buildAllowIndex scans every comment in the files for
// `//lint:allow <analyzers> [justification]`, returning both the
// line-indexed suppression table and the raw directives.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []allowDirective) {
	idx := make(allowIndex)
	var directives []allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				// Only directive-form comments (marker first, names that
				// look like analyzer names) are validated; prose that
				// merely mentions the marker still indexes but is never
				// a candidate for the unknown-analyzer finding.
				if isDirectiveForm(c.Text, names) {
					directives = append(directives, allowDirective{pos: c.Slash, names: names})
				}
				pos := fset.Position(c.Slash)
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return idx, directives
}

// parseAllow extracts the analyzer list from one comment, or nil.
func parseAllow(text string) []string {
	i := strings.Index(text, allowMarker)
	if i < 0 {
		return nil
	}
	rest := text[i+len(allowMarker):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil // e.g. lint:allowother is not the marker
	}
	rest = strings.TrimSpace(rest)
	list, _, _ := strings.Cut(rest, " ")
	var names []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// isDirectiveForm reports whether the comment is an actual allow
// directive: `//lint:allow ...` at the start of the comment, citing
// names made of name characters (letters, digits, or the * wildcard).
func isDirectiveForm(text string, names []string) bool {
	trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
	if !strings.HasPrefix(trimmed, allowMarker) {
		return false
	}
	for _, n := range names {
		for _, ch := range n {
			ok := ch == '*' || ch == '_' ||
				(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
			if !ok {
				return false
			}
		}
	}
	return true
}

// allows reports whether analyzer name is suppressed at pos.
func (idx allowIndex) allows(name string, pos token.Position) bool {
	for _, n := range idx[pos.Filename][pos.Line] {
		if n == name || n == "*" {
			return true
		}
	}
	return false
}
