package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go is the shared control-flow/dataflow engine under the suite's
// path-sensitive analyzers (poolcheck, lockorder, goroleak). It began
// life as the abstract interpreter buried in poolcheck; the engine owns
// every control-flow construct — statement lists, if/else joins,
// loops with break/continue edges, switch/select clause merges, labeled
// statements, goto bail-out — while the analyzer supplies a state type
// S and a small set of hooks describing how its facts move through
// simple statements.
//
// The engine is deliberately approximate, tuned the same way the
// original poolcheck walker was: merges are unions (hook-defined),
// loops run their body exactly once with the back edge and every
// break/continue edge folded by the analyzer's foldLoop hook, and goto
// abandons the path. That bias makes every report a genuine "some
// syntactic path does this" and keeps quiet code quiet.

// flowCtx exposes the engine's enclosing-loop context to hooks, for
// facts that depend on loop structure (a deferred release inside the
// loop that acquired, a wg.Add that must pair inside one iteration).
type flowCtx struct {
	loopBodies []*ast.BlockStmt
}

// InLoop reports whether the current statement sits inside a loop body.
func (fc *flowCtx) InLoop() bool { return len(fc.loopBodies) > 0 }

// InnermostLoop returns the body of the innermost enclosing loop, or nil.
func (fc *flowCtx) InnermostLoop() *ast.BlockStmt {
	if len(fc.loopBodies) == 0 {
		return nil
	}
	return fc.loopBodies[len(fc.loopBodies)-1]
}

// LoopContains reports whether the innermost enclosing loop body
// lexically contains pos.
func (fc *flowCtx) LoopContains(pos token.Pos) bool {
	b := fc.InnermostLoop()
	return b != nil && b.Pos() <= pos && pos < b.End()
}

// flowHooks parameterize a flowEngine over one analyzer's state S.
// merge, transfer and onReturn are required; the rest default to
// no-ops (observers) or to state-preserving folds.
type flowHooks[S any] struct {
	// merge joins the states of two control-flow paths.
	merge func(a, b S) S
	// transfer folds one simple statement (assign, expression, defer,
	// go, decl, send, incdec, …) into the state.
	transfer func(stmt ast.Stmt, st S, fc *flowCtx) S
	// onReturn observes a return statement with the state reaching it
	// and yields the (terminal) state — the hook is where analyzers
	// report facts that must not be live at exit.
	onReturn func(ret *ast.ReturnStmt, st S) S
	// onGoto folds a goto, which abandons path tracking. Nil keeps the
	// state unchanged.
	onGoto func(st S) S
	// observeExpr is called (state unchanged) on control-flow condition
	// expressions the engine otherwise consumes: if/for conditions,
	// range operands, switch tags.
	observeExpr func(e ast.Expr, st S)
	// observeSelect is called (state unchanged) on each select statement
	// before its clauses are walked.
	observeSelect func(sel *ast.SelectStmt, st S)
	// foldLoop computes the post-loop state: entry is the state before
	// the loop, exits the states at each break/continue edge, end the
	// state at the bottom of the (once-walked) body, bodyTerm whether
	// every path through the body terminated, infinite whether the loop
	// has no condition (for{}). Nil uses mergeFoldLoop.
	foldLoop func(body *ast.BlockStmt, entry S, exits []S, end S, bodyTerm, infinite bool) S
}

// mergeFoldLoop is the default loop fold: union of the entry state, the
// back-edge state and every break/continue edge. Conservative for
// union-style lattices (a fact that may hold on any edge holds after).
func mergeFoldLoop[S any](merge func(a, b S) S) func(body *ast.BlockStmt, entry S, exits []S, end S, bodyTerm, infinite bool) S {
	return func(_ *ast.BlockStmt, entry S, exits []S, end S, bodyTerm, _ bool) S {
		out := entry
		for _, s := range exits {
			out = merge(out, s)
		}
		if !bodyTerm {
			out = merge(out, end)
		}
		return out
	}
}

// flowEngine walks one function (or function-literal) body.
type flowEngine[S any] struct {
	h     flowHooks[S]
	loops []*flowLoop[S]
	fc    flowCtx
}

type flowLoop[S any] struct {
	exits []S // states at break/continue edges out of the loop body
}

func newFlowEngine[S any](h flowHooks[S]) *flowEngine[S] {
	if h.foldLoop == nil {
		h.foldLoop = mergeFoldLoop[S](h.merge)
	}
	return &flowEngine[S]{h: h}
}

// walkBody walks a whole function body and returns the fall-off state
// plus whether every path terminated before the end.
func (e *flowEngine[S]) walkBody(body *ast.BlockStmt, entry S) (S, bool) {
	return e.walkStmts(body.List, entry)
}

// walkStmts walks a statement list; the bool result reports whether the
// flow terminated (every path returned or branched away).
func (e *flowEngine[S]) walkStmts(list []ast.Stmt, st S) (S, bool) {
	for _, stmt := range list {
		var term bool
		st, term = e.walkStmt(stmt, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (e *flowEngine[S]) walkStmt(stmt ast.Stmt, st S) (S, bool) {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return e.h.onReturn(s, st), true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = e.walkStmt(s.Init, st)
		}
		if e.h.observeExpr != nil {
			e.h.observeExpr(s.Cond, st)
		}
		thenSt, thenTerm := e.walkStmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = e.walkStmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return e.h.merge(thenSt, elseSt), true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return e.h.merge(thenSt, elseSt), false
		}

	case *ast.BlockStmt:
		return e.walkStmts(s.List, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = e.walkStmt(s.Init, st)
		}
		if s.Cond != nil && e.h.observeExpr != nil {
			e.h.observeExpr(s.Cond, st)
		}
		return e.walkLoopBody(s.Body, st, s.Cond == nil), false

	case *ast.RangeStmt:
		if e.h.observeExpr != nil {
			e.h.observeExpr(s.X, st)
		}
		return e.walkLoopBody(s.Body, st, false), false

	case *ast.SwitchStmt:
		if s.Tag != nil && e.h.observeExpr != nil {
			e.h.observeExpr(s.Tag, st)
		}
		return e.walkClauses(stmt, st)

	case *ast.TypeSwitchStmt:
		return e.walkClauses(stmt, st)

	case *ast.SelectStmt:
		if e.h.observeSelect != nil {
			e.h.observeSelect(s, st)
		}
		return e.walkClauses(stmt, st)

	case *ast.LabeledStmt:
		return e.walkStmt(s.Stmt, st)

	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			if e.h.onGoto != nil {
				return e.h.onGoto(st), true
			}
			return st, true
		}
		if len(e.loops) > 0 {
			ctx := e.loops[len(e.loops)-1]
			ctx.exits = append(ctx.exits, st)
		}
		return st, true

	default:
		return e.h.transfer(stmt, st, &e.fc), false
	}
}

// walkLoopBody walks a loop body once, collecting break/continue edges,
// and hands the fold to the analyzer.
func (e *flowEngine[S]) walkLoopBody(body *ast.BlockStmt, st S, infinite bool) S {
	ctx := &flowLoop[S]{}
	e.loops = append(e.loops, ctx)
	e.fc.loopBodies = append(e.fc.loopBodies, body)
	endSt, term := e.walkStmts(body.List, st)
	e.loops = e.loops[:len(e.loops)-1]
	e.fc.loopBodies = e.fc.loopBodies[:len(e.fc.loopBodies)-1]
	return e.h.foldLoop(body, st, ctx.exits, endSt, term, infinite)
}

func (e *flowEngine[S]) walkClauses(stmt ast.Stmt, st S) (S, bool) {
	var clauses [][]ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			clauses = append(clauses, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			clauses = append(clauses, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clauses = append(clauses, cc.Body)
			hasDefault = hasDefault || cc.Comm == nil
		}
	}
	if len(clauses) == 0 {
		return st, false
	}
	var merged S
	first := true
	allTerm := true
	for _, body := range clauses {
		cst, cterm := e.walkStmts(body, st)
		if cterm {
			continue
		}
		allTerm = false
		if first {
			merged, first = cst, false
		} else {
			merged = e.h.merge(merged, cst)
		}
	}
	if !hasDefault {
		allTerm = false
		if first {
			merged, first = st, false
		} else {
			merged = e.h.merge(merged, st)
		}
	}
	if allTerm {
		return st, true
	}
	if first {
		return st, true
	}
	return merged, false
}
