package lint

// The hotalloc gate keeps the zero-alloc guarantees of the serving and
// decode hot paths honest at the compiler level. The repo's benchmarks
// assert allocs/op today, but a benchmark only covers the inputs it
// runs; the compiler's escape analysis covers every path through a
// function. lint/hotalloc.manifest pins, per hot function, the number
// of heap-escape sites the implementation is allowed to contain
// (cold-path panics and lazy initialisation included, which is why the
// budget is a count and not always zero). The gate rebuilds the listed
// packages with -gcflags=-m, attributes every "escapes to heap" /
// "moved to heap" diagnostic to its enclosing function, and fails when
// a manifest function gains an escape site — catching the innocent
// refactor that makes a frame buffer or message escape before it ships.
//
// Unlike the other analyzers this is not a per-package AST pass: the
// evidence comes from the compiler, so it runs as a separate step
// (cmd/relaylint -hotalloc) and is configured by the manifest rather
// than by //lint:allow directives.

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A HotallocEntry is one manifest line: a function qualified by its
// package path relative to the module root, and the maximum number of
// heap-escape sites it may contain.
type HotallocEntry struct {
	Pkg  string // e.g. "internal/masque"
	Func string // e.g. "(*Plane).Relay", "AcquireFrame"
	Max  int
	Line int // manifest line, for positioning stale-entry findings
}

// ParseHotallocManifest reads the manifest format: one entry per line,
//
//	<pkg>.<func> <max-escapes>
//	internal/masque.(*Plane).Relay 0
//	internal/dnswire.(*Encoder).Encode 1
//
// Blank lines and lines starting with # are skipped; a # after the
// budget starts a trailing comment.
func ParseHotallocManifest(r io.Reader) ([]HotallocEntry, error) {
	var entries []HotallocEntry
	sc := bufio.NewScanner(r)
	for lineno := 1; sc.Scan(); lineno++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("hotalloc manifest line %d: want \"<pkg>.<func> <max>\", got %q", lineno, sc.Text())
		}
		name, budget := fields[0], fields[1]
		max, err := strconv.Atoi(budget)
		if err != nil || max < 0 {
			return nil, fmt.Errorf("hotalloc manifest line %d: bad budget %q", lineno, budget)
		}
		// The package path ends at the first dot after the last slash:
		// "internal/masque.(*Plane).Relay" → "internal/masque".
		slash := strings.LastIndexByte(name, '/')
		dot := strings.IndexByte(name[slash+1:], '.')
		if dot < 0 {
			return nil, fmt.Errorf("hotalloc manifest line %d: %q has no function part", lineno, name)
		}
		dot += slash + 1
		entries = append(entries, HotallocEntry{
			Pkg:  name[:dot],
			Func: name[dot+1:],
			Max:  max,
			Line: lineno,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// escapeDiag is one compiler escape diagnostic, positioned in a file
// relative to the module root (slash-separated).
type escapeDiag struct {
	file string
	line int
}

// funcSpan is the line range of one top-level function declaration.
// Escapes inside closures attribute to the enclosing declaration: the
// closure is part of the function's allocation behaviour.
type funcSpan struct {
	start, end int
	qual       string // "(*T).Name", "T.Name" or "Name"
}

// RunHotalloc checks the manifest at manifestPath against the escape
// analysis of the packages it names, run from modRoot. It returns one
// finding per manifest function that gained escape sites beyond its
// budget, and one per manifest entry naming a function that no longer
// exists (a stale manifest must not pass silently — it would gate
// nothing).
func RunHotalloc(modRoot, manifestPath string) ([]Finding, error) {
	mf, err := os.Open(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("hotalloc: %w", err)
	}
	entries, err := ParseHotallocManifest(mf)
	mf.Close()
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, nil
	}

	pkgSet := map[string]bool{}
	for _, e := range entries {
		pkgSet[e.Pkg] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	diags, err := compileEscapes(modRoot, pkgs)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	spans := map[string][]funcSpan{} // module-relative file → decls
	declared := map[string]bool{}    // "pkg.qual" → exists
	declPos := map[string]token.Position{}
	for _, pkg := range pkgs {
		if err := indexPackageFuncs(fset, modRoot, pkg, spans, declared, declPos); err != nil {
			return nil, err
		}
	}

	counts := countEscapes(diags, spans)

	var findings []Finding
	for _, e := range entries {
		key := e.Pkg + "." + e.Func
		if !declared[key] {
			findings = append(findings, Finding{
				Analyzer: HotallocName,
				Pos:      token.Position{Filename: manifestPath, Line: e.Line, Column: 1},
				Message:  fmt.Sprintf("manifest entry %s names a function that does not exist; the gate protects nothing — fix or remove the entry", key),
			})
			continue
		}
		if n := counts[key]; n > e.Max {
			findings = append(findings, Finding{
				Analyzer: HotallocName,
				Pos:      declPos[key],
				Message: fmt.Sprintf("hot function %s has %d heap escape site(s), budget %d: run `go build -gcflags=-m ./%s` to see them, keep the hot path allocation-free or raise the budget in %s with justification",
					key, n, e.Max, e.Pkg, manifestPath),
			})
		}
	}
	sortFindings(findings)
	return findings, nil
}

// compileEscapes builds pkgs with -gcflags=-m from modRoot and returns
// the escape diagnostics. -gcflags applies to the named packages only,
// so dependency noise never appears. The go build cache replays -m
// diagnostics on cache hits, so a clean re-run stays fast.
func compileEscapes(modRoot string, pkgs []string) ([]escapeDiag, error) {
	args := []string{"build", "-gcflags=-m"}
	for _, p := range pkgs {
		args = append(args, "./"+p)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotalloc: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return parseEscapeOutput(string(out)), nil
}

// parseEscapeOutput extracts heap-escape diagnostics from -gcflags=-m
// compiler output. Only "escapes to heap" and "moved to heap" lines are
// allocation sites; "leaking param" lines describe flow into callers
// and are charged where the caller allocates.
func parseEscapeOutput(out string) []escapeDiag {
	var diags []escapeDiag
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		rest, ok := strings.CutPrefix(line, "./")
		if !ok {
			rest = line
		}
		parts := strings.SplitN(rest, ":", 4)
		if len(parts) < 4 || !strings.HasSuffix(parts[0], ".go") {
			continue // <autogenerated> and malformed lines
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		diags = append(diags, escapeDiag{file: filepath.ToSlash(parts[0]), line: n})
	}
	return diags
}

// indexPackageFuncs parses pkg's non-test files (syntax only — no type
// checking is needed to map a line to its enclosing declaration) and
// records every top-level function's span and qualified name.
func indexPackageFuncs(fset *token.FileSet, modRoot, pkg string, spans map[string][]funcSpan, declared map[string]bool, declPos map[string]token.Position) error {
	dir := filepath.Join(modRoot, filepath.FromSlash(pkg))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("hotalloc: manifest package %s has no Go files under %s", pkg, dir)
	}
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("hotalloc: %w", err)
		}
		key := path.Join(pkg, filepath.Base(name))
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			qual := funcQualName(fd)
			spans[key] = append(spans[key], funcSpan{
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.Body.End()).Line,
				qual:  pkg + "." + qual,
			})
			declared[pkg+"."+qual] = true
			declPos[pkg+"."+qual] = fset.Position(fd.Pos())
		}
	}
	return nil
}

// funcQualName renders a declaration's manifest name: "Name" for
// functions, "T.Name" / "(*T).Name" for methods. Generic receivers
// drop their type parameters, matching the instantiation-independent
// manifest form.
func funcQualName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	base := recvBaseName(t)
	if ptr {
		return "(*" + base + ")." + fd.Name.Name
	}
	return base + "." + fd.Name.Name
}

func recvBaseName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvBaseName(t.X)
	case *ast.IndexListExpr:
		return recvBaseName(t.X)
	}
	return "?"
}

// countEscapes attributes each diagnostic to the function whose span
// contains its line, counting per qualified name. Diagnostics outside
// any declaration (package-level initialisers) are dropped: the
// manifest gates functions.
func countEscapes(diags []escapeDiag, spans map[string][]funcSpan) map[string]int {
	counts := map[string]int{}
	for _, d := range diags {
		for _, s := range spans[d.file] {
			if d.line >= s.start && d.line <= s.end {
				counts[s.qual]++
				break
			}
		}
	}
	return counts
}
