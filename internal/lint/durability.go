package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Durability guards the crash-safety discipline PR 8 established: every
// durable artifact — datasets, checkpoints, diffs, sidecars, squashes,
// exported reports — must reach disk through internal/atomicio's
// temp-file + fsync + rename + directory-fsync sequence, so a crash can
// never leave a torn file behind a canonical name.
//
// In the guarded packages, direct calls to os.WriteFile, os.Create and
// os.Rename are findings. The one built-in exemption is the quarantine
// idiom: os.Rename(p, p+".corrupt") moves a damaged artifact *away*
// from its canonical name, which is exactly as crash-safe as it needs
// to be. Anything else needs a //lint:allow durability justification.
var Durability = &Analyzer{
	Name: "durability",
	Doc: "direct os.WriteFile/os.Create/os.Rename in the durable-artifact " +
		"packages must route through internal/atomicio",
	Run: runDurability,
}

// durabilityPkgs are the guarded packages (module-relative suffixes):
// the dataset/checkpoint writers plus every command that emits durable
// artifacts.
var durabilityPkgs = []string{
	"internal/core",
	"internal/relayd",
	"internal/colstore",
	"internal/experiments",
	"cmd/ecsscan",
	"cmd/report",
	"cmd/egressreport",
}

// durabilityFuncs are the os entry points that place bytes behind a
// canonical name without the atomic discipline.
var durabilityFuncs = map[string]bool{"WriteFile": true, "Create": true, "Rename": true}

func runDurability(pass *Pass) error {
	guarded := false
	for _, suffix := range durabilityPkgs {
		if hasPathSuffix(pass.Pkg.Path(), suffix) {
			guarded = true
		}
	}
	if !guarded {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !durabilityFuncs[fn.Name()] {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if fn.Name() == "Rename" && isQuarantineRename(call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct os.%s bypasses the atomic-write discipline: route the artifact through internal/atomicio (temp+fsync+rename)",
				fn.Name())
			return true
		})
	}
	return nil
}

// isQuarantineRename recognizes os.Rename(p, <expr>+".corrupt"): the
// sanctioned move-aside of a damaged artifact.
func isQuarantineRename(call *ast.CallExpr) bool {
	if len(call.Args) != 2 {
		return false
	}
	be, ok := ast.Unparen(call.Args[1]).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	lit, ok := ast.Unparen(be.Y).(*ast.BasicLit)
	return ok && strings.HasSuffix(strings.Trim(lit.Value, `"`), ".corrupt")
}
