package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir,
// which must be inside the module) and returns them ready for analysis.
//
// Dependencies are imported from gc export data produced by
// `go list -export`, so the only requirement is a toolchain that can
// build the tree — no analyzer-specific dependencies, no network.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard || lp.Name == "" {
			continue
		}
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkg, err := check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (typically a
// testdata directory the go tool itself ignores) under the fabricated
// import path asPath. Imports are resolved against the module rooted at
// modRoot, so testdata may import real repo packages.
func LoadDir(modRoot, dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}

	// Resolve whatever the testdata imports through the real module.
	seen := map[string]bool{}
	deps := []string{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	var exports map[string]string
	if len(deps) > 0 {
		_, exports, err = goList(modRoot, deps)
		if err != nil {
			return nil, err
		}
	}
	return check(fset, asPath, files, exportImporter(fset, exports))
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// goList runs `go list -e -export -deps -json` and returns the listed
// packages plus an import-path → export-data-file map covering every
// dependency (including the targets themselves).
func goList(dir string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}
	var pkgs []listPkg
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, exports, nil
}

// exportImporter reads dependencies from gc export data.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}
