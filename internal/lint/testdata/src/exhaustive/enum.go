// Package exhaustivedata declares enum-style constant sets of both
// underlying kinds and switches over them with and without full
// coverage.
package exhaustivedata

// Phase is an integer enum like the repo's scan phases.
type Phase int

// Scan phases.
const (
	PhaseProbe Phase = iota
	PhaseSweep
	PhaseMerge
)

// Mode is a string enum.
type Mode string

// Modes.
const (
	ModeFast Mode = "fast"
	ModeSafe Mode = "safe"
)

func phaseName(p Phase) string {
	switch p { // want `switch over Phase misses PhaseMerge and has no default`
	case PhaseProbe:
		return "probe"
	case PhaseSweep:
		return "sweep"
	}
	return "?"
}

func phaseNameFull(p Phase) string {
	switch p {
	case PhaseProbe:
		return "probe"
	case PhaseSweep:
		return "sweep"
	case PhaseMerge:
		return "merge"
	}
	return "?"
}

func phaseNameDefault(p Phase) string {
	switch p {
	case PhaseProbe:
		return "probe"
	default:
		return "other"
	}
}

func modeQPS(m Mode) int {
	switch m { // want `switch over Mode misses ModeSafe and has no default`
	case ModeFast:
		return 1000
	}
	return 10
}

// aliasCovered pins value-based coverage: an aliased constant counts.
const PhaseFirst = PhaseProbe

func aliased(p Phase) int {
	switch p {
	case PhaseFirst, PhaseSweep, PhaseMerge:
		return 1
	}
	return 0
}

// untypedSwitch is out of scope: plain ints are not an enum set.
func untypedSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// suppressed documents an intentionally partial switch.
func suppressed(p Phase) bool {
	//lint:allow exhaustive — only the probe phase matters here
	switch p {
	case PhaseProbe:
		return true
	}
	return false
}
