// The masque frame pool rides the same acquire/release discipline as
// dnswire's message pool; this file seeds the frame-flavoured
// violation classes plus the quiet ownership patterns, proving the
// analyzer's pool-API table covers both pools.
package poolcheckdata

import (
	"github.com/relay-networks/privaterelay/internal/masque"
)

var retainedFrame *masque.Frame

type frameHolder struct {
	f *masque.Frame
}

// frameLeakOnErrorPath releases on the happy path only.
func frameLeakOnErrorPath(fail bool) {
	f := masque.AcquireFrame() // want "frame f from masque.AcquireFrame is not released on every path"
	if fail {
		return
	}
	masque.ReleaseFrame(f)
}

// frameDiscarded drops the acquired frame on the floor.
func frameDiscarded() {
	masque.AcquireFrame() // want "result of masque.AcquireFrame discarded"
}

// frameUseAfterRelease touches the frame after handing it back.
func frameUseAfterRelease() uint32 {
	f := masque.AcquireFrame()
	masque.ReleaseFrame(f)
	return f.StreamID // want "use of frame f after masque.ReleaseFrame"
}

// frameDoubleRelease returns the frame to the pool twice.
func frameDoubleRelease() {
	f := masque.AcquireFrame()
	masque.ReleaseFrame(f)
	masque.ReleaseFrame(f) // want "frame f released twice"
}

// frameStoreInField retains a pooled frame beyond its lifetime.
func frameStoreInField(h *frameHolder) {
	f := masque.AcquireFrame()
	h.f = f // want "pooled frame f stored in struct field f"
	masque.ReleaseFrame(f)
}

// frameStoreInGlobal retains a pooled frame in package state.
func frameStoreInGlobal() {
	f := masque.AcquireFrame()
	retainedFrame = f // want "pooled frame f stored in package-level variable retainedFrame"
	masque.ReleaseFrame(f)
}

// frameDeferredRelease is the canonical quiet pattern.
func frameDeferredRelease() uint32 {
	f := masque.AcquireFrame()
	defer masque.ReleaseFrame(f)
	return f.StreamID
}

// frameTransferByReturn hands ownership to the caller.
func frameTransferByReturn() *masque.Frame {
	f := masque.AcquireFrame()
	f.Type = masque.FrameData
	return f
}

// frameReleaseInCallee transfers to a same-package releasing helper.
func frameReleaseInCallee() {
	f := masque.AcquireFrame()
	recycleFrame(f)
}

func recycleFrame(f *masque.Frame) {
	masque.ReleaseFrame(f)
}

// frameReleasedBothPaths is quiet: every path settles the frame.
func frameReleasedBothPaths(fail bool) {
	f := masque.AcquireFrame()
	if fail {
		masque.ReleaseFrame(f)
		return
	}
	masque.ReleaseFrame(f)
}

// frameSuppressedLeak pins that //lint:allow still works for the frame
// pool.
func frameSuppressedLeak() {
	f := masque.AcquireFrame() //lint:allow poolcheck — ownership moves through a side table the analyzer cannot see
	_ = f
}
