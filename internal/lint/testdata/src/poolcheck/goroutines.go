// Go-statement ownership transfer and defer-inside-loop: the poolcheck
// blind spots closed in relaylint v2. A goroutine that receives a
// pooled value owns it — it must release on every path of its body —
// and a deferred release inside a loop runs once at function exit, not
// per iteration.
package poolcheckdata

import (
	"github.com/relay-networks/privaterelay/internal/masque"
)

// goClosureLeak hands the frame to a goroutine that skips the release
// on its early-return path.
func goClosureLeak(out chan<- uint32, fail bool) {
	f := masque.AcquireFrame()
	go func() { // want `frame f is captured by this goroutine, which does not release it on every path \(pair it with masque.ReleaseFrame or return-free the goroutine\)`
		if fail {
			return
		}
		out <- f.StreamID
		masque.ReleaseFrame(f)
	}()
}

// goClosureTransfer releases on every path inside the goroutine:
// ownership transferred, sanctioned.
func goClosureTransfer(out chan<- uint32) {
	f := masque.AcquireFrame()
	go func() {
		out <- f.StreamID
		masque.ReleaseFrame(f)
	}()
}

// goClosureDeferredRelease transfers ownership with the defer form.
func goClosureDeferredRelease(out chan<- uint32) {
	f := masque.AcquireFrame()
	go func() {
		defer masque.ReleaseFrame(f)
		out <- f.StreamID
	}()
}

// goReleaserCall hands the frame straight to a releasing goroutine.
func goReleaserCall() {
	f := masque.AcquireFrame()
	go masque.ReleaseFrame(f)
}

// goArgTransfer passes the frame as an argument; the parameter is
// released on every path, so ownership transfers cleanly.
func goArgTransfer(out chan<- uint32) {
	f := masque.AcquireFrame()
	go func(g *masque.Frame) {
		out <- g.StreamID
		masque.ReleaseFrame(g)
	}(f)
}

// goArgLeak passes the frame as an argument to a goroutine that never
// releases its parameter.
func goArgLeak(out chan<- uint32) {
	f := masque.AcquireFrame()
	go func(g *masque.Frame) { // want `frame f is captured by this goroutine, which does not release it on every path`
		out <- g.StreamID
	}(f)
}

// deferInLoop stacks one deferred release per iteration; none runs
// until the function returns.
func deferInLoop(frames <-chan []byte) {
	for p := range frames {
		f := masque.AcquireFrame()
		f.SetPayload(p)
		defer masque.ReleaseFrame(f) // want `deferred release of frame f inside a loop runs at function exit, not per iteration; release it at the end of the iteration instead`
	}
}

// releasePerIteration returns each frame at the end of its iteration:
// the sanctioned loop form.
func releasePerIteration(frames <-chan []byte) {
	for p := range frames {
		f := masque.AcquireFrame()
		f.SetPayload(p)
		masque.ReleaseFrame(f)
	}
}
