// Package poolcheckdata seeds every poolcheck violation class plus the
// ownership patterns that must stay quiet. Each `// want "regex"`
// comment is a diagnostic the golden test requires on that line.
package poolcheckdata

import (
	"github.com/relay-networks/privaterelay/internal/dnswire"
)

var retained *dnswire.Message

type holder struct {
	msg *dnswire.Message
}

// leakOnErrorPath releases on the happy path only.
func leakOnErrorPath(fail bool) {
	m := dnswire.AcquireMessage() // want "not released on every path"
	if fail {
		return
	}
	dnswire.ReleaseMessage(m)
}

// discarded drops the acquired message on the floor.
func discarded() {
	dnswire.AcquireMessage() // want "result of dnswire.AcquireMessage discarded"
}

// useAfterRelease touches the message after handing it back.
func useAfterRelease() uint16 {
	m := dnswire.AcquireMessage()
	dnswire.ReleaseMessage(m)
	return m.Header.ID // want "use of message m after dnswire.ReleaseMessage"
}

// doubleRelease returns the message to the pool twice.
func doubleRelease() {
	m := dnswire.AcquireMessage()
	dnswire.ReleaseMessage(m)
	dnswire.ReleaseMessage(m) // want "message m released twice"
}

// storeInField retains a pooled message beyond its lifetime.
func storeInField(h *holder) {
	m := dnswire.AcquireMessage()
	h.msg = m // want "pooled message m stored in struct field msg"
	dnswire.ReleaseMessage(m)
}

// storeInGlobal retains a pooled message in package state.
func storeInGlobal() {
	m := dnswire.AcquireMessage()
	retained = m // want "pooled message m stored in package-level variable retained"
	dnswire.ReleaseMessage(m)
}

// leakInLoop acquires per iteration without releasing.
func leakInLoop(n int) {
	for i := 0; i < n; i++ {
		m := dnswire.AcquireMessage() // want "not released on every path"
		m.Header.ID = uint16(i)
	}
}

// --- patterns that must stay quiet ---

// releasedBothPaths is the canonical pairing.
func releasedBothPaths(fail bool) {
	m := dnswire.AcquireMessage()
	if fail {
		dnswire.ReleaseMessage(m)
		return
	}
	m.Header.ID = 7
	dnswire.ReleaseMessage(m)
}

// deferredRelease covers every exit.
func deferredRelease(fail bool) {
	m := dnswire.AcquireMessage()
	defer dnswire.ReleaseMessage(m)
	if fail {
		return
	}
	m.Header.ID = 9
}

// transferByReturn hands ownership to the caller.
func transferByReturn() *dnswire.Message {
	m := dnswire.AcquireMessage()
	m.Header.ID = 1
	return m
}

// releaseInCallee is the interprocedural case: the message is acquired
// here and released by consume, via finish, two calls down.
func releaseInCallee() {
	m := dnswire.AcquireMessage()
	consume(m)
}

func consume(m *dnswire.Message) {
	m.Header.Response = true
	finish(m)
}

func finish(m *dnswire.Message) {
	dnswire.ReleaseMessage(m)
}

// loopReleaseEachIteration mirrors the UDP client's receive loop.
func loopReleaseEachIteration(bad func(*dnswire.Message) bool) *dnswire.Message {
	for {
		m := dnswire.AcquireMessage()
		if bad(m) {
			dnswire.ReleaseMessage(m)
			continue
		}
		return m
	}
}

// switchRelease releases in every branch of a switch.
func switchRelease(kind int) {
	m := dnswire.AcquireMessage()
	switch kind {
	case 0:
		dnswire.ReleaseMessage(m)
	default:
		dnswire.ReleaseMessage(m)
	}
}

// suppressedLeak documents an intentional leak; the allow comment must
// silence the analyzer.
func suppressedLeak() {
	m := dnswire.AcquireMessage() //lint:allow poolcheck — intentional: exercised by the suppression golden test
	m.Header.ID = 3
}
