// Package goroleakdata runs under a fabricated import path ending in
// internal/masque, putting it inside the goroleak analyzer's guarded
// set. It seeds goroutines with and without termination evidence: wg
// joins (balanced and unbalanced), shutdown-signal selects, bounded
// loops, and pooled-object captures.
package goroleakdata

import (
	"context"
	"sync"

	"github.com/relay-networks/privaterelay/internal/masque"
)

// joinedWorker pairs the Add with a deferred Done: sanctioned.
func joinedWorker(work chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range work {
			_ = v
		}
	}()
	wg.Wait()
}

// unbalancedDone calls Done with no Add pending at the spawn point.
func unbalancedDone() {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls Done on a WaitGroup with no Add pending at this go statement \(unbalanced wg.Add count\)`
		defer wg.Done()
	}()
	wg.Wait()
}

// conditionalAdd only Adds on one path to the spawn: the guaranteed
// pending count at the go statement is zero.
func conditionalAdd(extra bool) {
	var wg sync.WaitGroup
	if extra {
		wg.Add(1)
	}
	go func() { // want `goroutine calls Done on a WaitGroup with no Add pending at this go statement \(unbalanced wg.Add count\)`
		defer wg.Done()
	}()
	wg.Wait()
}

// spinner loops forever with no join and no shutdown signal.
func spinner(work chan int) {
	go func() { // want `goroutine has no provable termination path: its loop selects no ctx.Done\(\)/quit channel and no wg.Add/Done pair joins it`
		for {
			v := <-work
			_ = v
		}
	}()
}

// quitLoop selects a quit-named channel in its loop: sanctioned.
func quitLoop(work chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// ctxLoop selects ctx.Done() in its loop: sanctioned.
func ctxLoop(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// boundedLoop carries its own exit condition: sanctioned.
func boundedLoop(out chan<- int) {
	go func() {
		for i := 0; i < 10; i++ {
			out <- i
		}
	}()
}

// rangeLoop ends when the channel closes: sanctioned.
func rangeLoop(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// server joins a named method goroutine to its quit channel.
type server struct {
	quit chan struct{}
	work chan int
}

func (s *server) loop() {
	for {
		select {
		case <-s.quit:
			return
		case v := <-s.work:
			_ = v
		}
	}
}

// start spawns the named method; its declaration carries the shutdown
// select, so the spawn is sanctioned.
func (s *server) start() {
	go s.loop()
}

// capturedFrameLeak hands a pooled frame it does not own to a
// goroutine that never releases it.
func capturedFrameLeak(f *masque.Frame, out chan<- []byte) {
	go func() { // want `goroutine captures pooled frame f without releasing it \(pair with masque.ReleaseFrame inside the goroutine or transfer ownership explicitly\)`
		out <- f.Payload
	}()
}

// capturedFrameReleased releases the captured frame inside the
// goroutine: ownership transferred, sanctioned.
func capturedFrameReleased(f *masque.Frame, out chan<- uint32) {
	go func() {
		out <- f.StreamID
		masque.ReleaseFrame(f)
	}()
}
