// Package suppressdata exercises the //lint:allow edge cases through
// the full suite pipeline: one directive naming two analyzers for one
// line, the own-line form before a block statement, a directive naming
// the wrong analyzer (which must not silence anything else), and a
// typo'd analyzer name (which is itself a finding). It runs under a
// fabricated path ending in internal/core so determinism applies.
package suppressdata

import (
	"time"

	"github.com/relay-networks/privaterelay/internal/masque"
)

// oneLineTwoAnalyzers seeds a poolcheck leak and a determinism
// wall-clock read on the same line; the single trailing directive
// names both analyzers and suppresses both findings.
func oneLineTwoAnalyzers(fail bool) time.Time {
	f := masque.AcquireFrame(); t := time.Now() //lint:allow poolcheck,determinism — suppress golden: one line, two analyzers, both covered
	if fail {
		return t
	}
	masque.ReleaseFrame(f)
	return t
}

// ownLineBeforeBlock puts the directive on its own line before a block
// statement: the range finding is reported at the `for` keyword, one
// line below the comment, which the own-line form covers.
func ownLineBeforeBlock(m map[string]int) []string {
	var out []string
	//lint:allow determinism — suppress golden: own-line form before a block statement
	for k := range m {
		out = append(out, k)
	}
	return out
}

// wrongAnalyzer names only poolcheck, so the determinism finding on
// the covered line must still fire.
func wrongAnalyzer() time.Time {
	//lint:allow poolcheck — suppress golden: wrong analyzer, must not silence determinism
	return time.Now() // want `time.Now in deterministic package`
}

// typoAnalyzer misspells the analyzer name: the directive suppresses
// nothing and the suite reports the dead directive itself.
func typoAnalyzer() int {
	//lint:allow determinsm — suppress golden: typo'd analyzer name is a finding
	return 1
}
