// Package atomicdata seeds mixed atomic/plain field access in both
// forms the analyzer understands: function-style sync/atomic calls on
// plain fields and the atomic.Int64-style wrapper types.
package atomicdata

import "sync/atomic"

type counters struct {
	hits   int64 // accessed via atomic.AddInt64: plain access is a race
	misses int64 // plain-only: fine
	state  atomic.Int32
}

func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() (int64, int64) {
	return c.hits, c.misses // want `plain access to field hits`
}

func (c *counters) reset() {
	c.hits = 0 // want `plain access to field hits`
	c.misses = 0
}

func (c *counters) loadHits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) wrapperOK() int32 {
	c.state.Store(3)
	return c.state.Load()
}

func (c *counters) wrapperByAddress() *atomic.Int32 {
	return &c.state
}

func (c *counters) wrapperCopied() atomic.Int32 {
	return c.state // want `field state has type sync/atomic.Int32`
}

func (c *counters) wrapperAssigned(v atomic.Int32) {
	c.state = v // want `field state has type sync/atomic.Int32`
}
