// Package lockorderdata runs under a fabricated import path ending in
// internal/masque, putting it inside the lockorder analyzer's guarded
// set. It seeds every violation class — blocking under a shard leaf,
// nesting under a shard leaf, declared-order inversion, self-deadlock,
// leak-on-path, blocking selects and callback-holds literals — next to
// the sanctioned collect-then-act and defer forms.
package lockorderdata

import (
	"io"
	"sync"
	"time"
)

// table mimics the sharded session table: mu is a declared leaf lock.
type table struct {
	mu sync.Mutex //lint:shardlock
	m  map[int]int
}

// registry is an ordinary (non-shard) lock.
type registry struct {
	mu sync.Mutex
	n  int
}

// conn orders its two locks: mu is always taken before wmu.
//
//lint:lockorder conn.mu < conn.wmu
type conn struct {
	mu  sync.Mutex
	wmu sync.Mutex
}

// blockUnderShard performs I/O inside the shard critical section.
func blockUnderShard(t *table, w io.Writer, r io.Reader) {
	t.mu.Lock()
	io.Copy(w, r) // want `blocking call \(io.Copy\) while shard lock table.mu is held`
	t.mu.Unlock()
}

// sleepUnderShard naps inside the shard critical section.
func sleepUnderShard(t *table) {
	t.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call \(time.Sleep\) while shard lock table.mu is held`
	t.mu.Unlock()
}

// methodBlockUnderShard calls an external blocking method under the
// shard lock.
func methodBlockUnderShard(t *table, r io.ReadCloser) {
	t.mu.Lock()
	r.Close() // want `blocking call \(io Close method\) while shard lock table.mu is held`
	t.mu.Unlock()
}

// nestUnderShard acquires another lock while the shard leaf is held.
func nestUnderShard(t *table, reg *registry) {
	t.mu.Lock()
	reg.mu.Lock() // want `lock registry.mu acquired while shard lock table.mu is held \(shard locks are leaves\)`
	reg.mu.Unlock()
	t.mu.Unlock()
}

// sendUnderShard blocks on a channel send inside the critical section.
func sendUnderShard(t *table, ch chan int) {
	t.mu.Lock()
	ch <- 1 // want `channel send blocks while shard lock table.mu is held`
	t.mu.Unlock()
}

// selectUnderShard blocks on a defaultless select inside the critical
// section.
func selectUnderShard(t *table, a, b chan int) {
	t.mu.Lock()
	select { // want `select with no default case blocks while shard lock table.mu is held`
	case <-a:
	case <-b:
	}
	t.mu.Unlock()
}

// selectDefaultUnderShard polls without blocking: sanctioned.
func selectDefaultUnderShard(t *table, a chan int) {
	t.mu.Lock()
	select {
	case <-a:
	default:
	}
	t.mu.Unlock()
}

// takeBoth respects the declared conn.mu < conn.wmu order: sanctioned.
func takeBoth(c *conn) {
	c.mu.Lock()
	c.wmu.Lock()
	c.wmu.Unlock()
	c.mu.Unlock()
}

// takeBothInverted acquires against the declared order.
func takeBothInverted(c *conn) {
	c.wmu.Lock()
	c.mu.Lock() // want `lock conn.mu acquired while conn.wmu is held, violating declared order conn.mu < conn.wmu`
	c.mu.Unlock()
	c.wmu.Unlock()
}

// selfDeadlock re-acquires a lock it already holds. The single unlock
// pairs with the inner acquire, so the outer one also leaks.
func selfDeadlock(reg *registry) {
	reg.mu.Lock() // want `lock registry.mu acquired here is not released on every path`
	reg.mu.Lock() // want `lock registry.mu acquired while already held \(self-deadlock\)`
	reg.mu.Unlock()
}

// leakOnPath forgets the unlock on the early-return path.
func leakOnPath(reg *registry, bail bool) {
	reg.mu.Lock() // want `lock registry.mu acquired here is not released on every path`
	if bail {
		return
	}
	reg.mu.Unlock()
}

// deferredUnlock covers every exit: sanctioned.
func deferredUnlock(reg *registry, bail bool) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if bail {
		return 0
	}
	return reg.n
}

// lockHelper is a same-package callee that takes the registry lock; a
// shard critical section calling it nests locks transitively.
func lockHelper(reg *registry) {
	reg.mu.Lock()
	reg.n++
	reg.mu.Unlock()
}

// nestViaCallee reaches the nested acquisition through a call.
func nestViaCallee(t *table, reg *registry) {
	t.mu.Lock()
	lockHelper(reg) // want `call to lockHelper acquires a lock \(registry.mu\) while shard lock table.mu is held \(shard locks are leaves\)`
	t.mu.Unlock()
}

// blockHelper is a same-package callee that blocks.
func blockHelper(w io.Writer, r io.Reader) {
	io.Copy(w, r)
}

// blockViaCallee reaches the blocking call through a call.
func blockViaCallee(t *table, w io.Writer, r io.Reader) {
	t.mu.Lock()
	blockHelper(w, r) // want `call to blockHelper may block while shard lock table.mu is held`
	t.mu.Unlock()
}

// rangeLocked mimics Sharded.Range: the literal argument runs under
// the shard lock.
//
//lint:callback-holds table.mu
func rangeLocked(t *table, f func(int, int) bool) {
	t.mu.Lock()
	for k, v := range t.m {
		if !f(k, v) {
			break
		}
	}
	t.mu.Unlock()
}

// callbackBlocks passes a literal that blocks under the seeded lock —
// the old closeAll shape before the collect-then-act rewrite.
func callbackBlocks(t *table, conns map[int]io.Closer) {
	rangeLocked(t, func(k, v int) bool {
		conns[k].Close() // want `blocking call \(io Close method\) while shard lock table.mu is held`
		return true
	})
}

// callbackNests passes a literal that takes a lock under the seeded
// shard lock.
func callbackNests(t *table, reg *registry) {
	rangeLocked(t, func(k, v int) bool {
		reg.mu.Lock() // want `lock registry.mu acquired while shard lock table.mu is held \(shard locks are leaves\)`
		reg.mu.Unlock()
		return true
	})
}

// callbackCollects only appends under the seeded lock and acts after
// Range returns: the sanctioned collect-then-act form.
func callbackCollects(t *table, conns map[int]io.Closer) {
	var victims []io.Closer
	rangeLocked(t, func(k, v int) bool {
		victims = append(victims, conns[k])
		return true
	})
	for _, c := range victims {
		c.Close()
	}
}
