// Package determdata runs under a fabricated import path ending in
// internal/core, so the determinism analyzer treats it as a
// deterministic package. It seeds wall-clock reads, global randomness
// and order-leaking map ranges next to the sanctioned alternatives.
package determdata

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/relay-networks/privaterelay/internal/vclock"
)

// wallClock reads time directly instead of through the injected clock.
func wallClock() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

// elapsed uses time.Since, which reads the wall clock too.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package`
}

// viaClock routes through the injected clock: sanctioned.
func viaClock(c vclock.Clock) time.Time {
	return c.Now()
}

// globalRand draws from the process-global, non-seeded source.
func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in deterministic package`
}

// seededRand draws from a caller-seeded source: sanctioned.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// keysUnsorted leaks map iteration order into the returned slice.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map appends to returned slice out without a sort`
		out = append(out, k)
	}
	return out
}

// keysSorted re-establishes a deterministic order: sanctioned.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dumpUnsorted writes in map iteration order.
func dumpUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `write inside range over map`
	}
}

// invert accumulates into another map: order-independent, sanctioned.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// suppressedTrailing documents a justified wall-clock read with the
// trailing allow form.
func suppressedTrailing() time.Time {
	return time.Now() //lint:allow determinism — golden test for the trailing suppression form
}

// suppressedOwnLine documents a justified wall-clock read with the
// own-line allow form.
func suppressedOwnLine() time.Time {
	//lint:allow determinism — golden test for the own-line suppression form
	return time.Now()
}

// timerAfter arms a wall-clock timer; the virtual clock cannot advance
// past it, so timeouts become wall-time-dependent.
func timerAfter() <-chan time.Time {
	return time.After(time.Second) // want `time.After in deterministic package determdata: route timers through the injected vclock.Clock`
}

// timerNew constructs a wall-clock timer object.
func timerNew() *time.Timer {
	return time.NewTimer(time.Second) // want `time.NewTimer in deterministic package`
}

// timerTick leaks a wall-clock ticker channel.
func timerTick() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick in deterministic package`
}

// napSleep blocks on the wall clock.
func napSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic package`
}

// shuffleGlobal permutes through the process-global source.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle in deterministic package`
}

// shuffleSeeded permutes with a caller-seeded source: sanctioned.
func shuffleSeeded(xs []int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// timerViaClock waits through the injected clock: sanctioned.
func timerViaClock(ctx context.Context, c vclock.Clock, d time.Duration) error {
	return c.Sleep(ctx, d)
}
