// Package durabilitydata runs under a fabricated import path ending in
// internal/relayd, putting it inside the durability analyzer's guarded
// set: durable artifacts must be written through internal/atomicio, not
// by direct os calls a crash can tear.
package durabilitydata

import (
	"io"
	"os"

	"github.com/relay-networks/privaterelay/internal/atomicio"
)

// saveDirect writes the artifact non-atomically.
func saveDirect(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `direct os.WriteFile bypasses the atomic-write discipline: route the artifact through internal/atomicio \(temp\+fsync\+rename\)`
}

// createDirect opens a truncating handle a crash leaves half-written.
func createDirect(path string) (*os.File, error) {
	return os.Create(path) // want `direct os.Create bypasses the atomic-write discipline`
}

// renameDirect publishes without the fsync discipline around it.
func renameDirect(tmp, path string) error {
	return os.Rename(tmp, path) // want `direct os.Rename bypasses the atomic-write discipline`
}

// quarantine moves a damaged artifact aside: the sanctioned idiom.
func quarantine(path string) {
	_ = os.Rename(path, path+".corrupt")
}

// saveAtomic routes through atomicio: sanctioned.
func saveAtomic(path string, b []byte) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

// saveAllowed documents a justified direct write with the trailing
// suppression form.
func saveAllowed(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) //lint:allow durability — golden test for a justified direct write
}

// readSide only reads: os.Open and file methods are not gated.
func readSide(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
