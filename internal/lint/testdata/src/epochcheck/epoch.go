// Package epochcheck is golden testdata for the epochcheck analyzer:
// maps published through an atomic.Pointer are immutable, and fields
// published in place via Store must not be accessed plainly.
package epochcheck

import "sync/atomic"

// cache is the epochmap shape: readers Load a snapshot, writers build
// a fresh map and publish it with one pointer store.
type cache struct {
	snap  atomic.Pointer[map[string]int]
	extra map[string]int
}

// get is the legitimate read path: Load, probe, never write.
func (c *cache) get(k string) (int, bool) {
	if s := c.snap.Load(); s != nil {
		v, ok := (*s)[k]
		return v, ok
	}
	return 0, false
}

// publish is the legitimate write path: build a fresh map, then Store.
func (c *cache) publish(entries map[string]int) {
	next := make(map[string]int, len(entries))
	for k, v := range entries {
		next[k] = v
	}
	c.snap.Store(&next)
}

// mutateDirect writes straight through the loaded pointer.
func (c *cache) mutateDirect(k string, v int) {
	(*c.snap.Load())[k] = v // want `write to a map obtained from atomic\.Pointer\.Load`
}

// mutateViaLocal writes through a variable holding the snapshot.
func (c *cache) mutateViaLocal(k string, v int) {
	s := c.snap.Load()
	m := *s
	m[k] = v // want `write to a map obtained from atomic\.Pointer\.Load`
}

// deleteFromEpoch shrinks a published snapshot in place.
func (c *cache) deleteFromEpoch(k string) {
	s := c.snap.Load()
	delete(*s, k) // want `delete on a map obtained from atomic\.Pointer\.Load`
}

// clearEpoch empties a published snapshot in place.
func (c *cache) clearEpoch() {
	s := c.snap.Load()
	clear(*s) // want `clear on a map obtained from atomic\.Pointer\.Load`
}

// inPlacePublisher publishes a struct field by address instead of a
// fresh local: every plain access to that field is now a race with
// readers holding the snapshot.
type inPlacePublisher struct {
	live atomic.Pointer[map[string]int]
	data map[string]int
}

func (p *inPlacePublisher) publishInPlace() {
	p.live.Store(&p.data)
}

func (p *inPlacePublisher) touchPublished(k string, v int) {
	p.data[k] = v // want `plain access to map field data`
}

func (p *inPlacePublisher) readPublished(k string) int {
	return p.data[k] // want `plain access to map field data`
}

// localSnapshotReadsAreFine: reads through the loaded pointer, ranges
// included, are the whole point and must not be flagged.
func (p *inPlacePublisher) localSnapshotReadsAreFine() int {
	total := 0
	if s := p.live.Load(); s != nil {
		for _, v := range *s {
			total += v
		}
	}
	return total
}

// plainFieldStaysPlain: a map field never given to Store keeps its
// ordinary mutability.
func (c *cache) plainFieldStaysPlain(k string, v int) {
	if c.extra == nil {
		c.extra = map[string]int{}
	}
	c.extra[k] = v
}
