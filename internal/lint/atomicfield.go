package lint

import (
	"go/ast"
	"go/types"
)

// Atomicfield enforces single-discipline access to atomically-used
// struct fields, in two forms:
//
//   - a field passed by address to a sync/atomic function anywhere in
//     the package must never be read or written plainly — a single
//     plain load next to atomic stores is a data race the race
//     detector only finds when the interleaving happens;
//   - a field of one of the sync/atomic wrapper types (atomic.Int64,
//     atomic.Pointer, …) must only be touched through its methods
//     (or passed by address); copying or reassigning the wrapper
//     smuggles a plain access past the type's protection.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic must not be read or written " +
		"plainly anywhere else",
	Run: runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	// First sweep: every &x.f argument to a sync/atomic call marks the
	// field f as atomic and blesses that particular selector node.
	atomicFields := map[*types.Var]bool{}
	blessed := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass.Info, sel); f != nil {
					atomicFields[f] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}

	// Second sweep: any other access to those fields, and any non-method
	// use of a wrapper-typed field, is a violation.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass.Info, sel)
			if f == nil {
				return true
			}
			if atomicFields[f] && !blessed[sel] {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed with sync/atomic elsewhere in this package",
					f.Name())
				return true
			}
			if isAtomicWrapperType(f.Type()) && !wrapperUseOK(stack) {
				pass.Reportf(sel.Pos(),
					"field %s has type %s and must only be used via its methods or by address",
					f.Name(), f.Type().String())
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isAtomicWrapperType reports whether t is one of the sync/atomic
// wrapper structs (atomic.Int64, atomic.Pointer[T], …).
func isAtomicWrapperType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// wrapperUseOK reports whether the wrapper-field selector at the top of
// stack is used legitimately: as the receiver of a method call
// (x.f.Load()) or with its address taken (&x.f).
func wrapperUseOK(stack []ast.Node) bool {
	sel := stack[len(stack)-1].(*ast.SelectorExpr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			// x.f.Load — the wrapper is the X of a method selector.
			return parent.X == sel || innerExpr(parent.X) == sel
		case *ast.UnaryExpr:
			return parent.Op.String() == "&"
		default:
			return false
		}
	}
	return false
}

// innerExpr strips parens.
func innerExpr(e ast.Expr) ast.Expr { return ast.Unparen(e) }
