package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive checks that a switch over one of the repo's enum-style
// constant sets (fault kinds, DNS protocols, scan phases, outcome
// classifications, …) either covers every constant of the set or
// carries a default clause. A new enum member then fails the lint at
// every switch that has not decided what to do with it.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over the repo's enum-style constant sets must cover every " +
		"constant or have a default clause",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.Info.TypeOf(sw.Tag)
	set := enumSet(pass, tagType)
	if len(set) < 2 {
		return // not one of the repo's enum sets
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause := stmt.(*ast.CaseClause)
		if clause.List == nil {
			return // default clause: the switch has decided
		}
		for _, expr := range clause.List {
			if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range set {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	named, _ := tagType.(*types.Named)
	pass.Reportf(sw.Pos(), "switch over %s misses %s and has no default",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// enumSet returns the package-level constants forming t's enum set, or
// nil when t is not an enum-style named type declared in this module.
// Constants with duplicate values (aliases) collapse through the
// value-based coverage check, and unexported constants only bind
// switches inside the defining package.
func enumSet(pass *Pass, t types.Type) []*types.Const {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	samePkg := pass.Pkg.Path() == obj.Pkg().Path()
	var set []*types.Const
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		if !samePkg && !c.Exported() {
			continue
		}
		set = append(set, c)
	}
	return set
}

// inModule reports whether path belongs to this repository (testdata
// packages run under fabricated module-prefixed paths, so they
// participate too).
func inModule(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/") ||
		strings.Contains(path, "/lintdata/")
}
