package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runGolden is the analysistest-style harness: it loads one testdata
// package under a fabricated import path, runs a single analyzer
// through the production pipeline (including //lint:allow suppression)
// and matches findings against `// want "regex"` comments line by line.
func runGolden(t *testing.T, a *Analyzer, dirname, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirname)
	pkg, err := LoadDir("../..", dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type expectation struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[string][]*expectation{} // "file:line" → pending expectations
	wantRe := regexp.MustCompile("^// want [\"`]([^\"`]+)[\"`]")
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &expectation{re: regexp.MustCompile(m[1])})
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.hit && exp.re.MatchString(f.Message) {
				exp.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", key, f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.hit {
				t.Errorf("missing finding at %s matching %q", key, exp.re)
			}
		}
	}
}

func TestPoolcheckGolden(t *testing.T) {
	runGolden(t, Poolcheck, "poolcheck", modulePath+"/lintdata/poolcheck")
}

func TestDeterminismGolden(t *testing.T) {
	// The fabricated path ends in internal/core, putting the testdata
	// inside the deterministic package set.
	runGolden(t, Determinism, "determinism", modulePath+"/lintdata/internal/core")
}

func TestAtomicfieldGolden(t *testing.T) {
	runGolden(t, Atomicfield, "atomicfield", modulePath+"/lintdata/atomicfield")
}

func TestEpochcheckGolden(t *testing.T) {
	runGolden(t, Epochcheck, "epochcheck", modulePath+"/lintdata/epochcheck")
}

func TestExhaustiveGolden(t *testing.T) {
	runGolden(t, Exhaustive, "exhaustive", modulePath+"/lintdata/exhaustive")
}

// TestSuppressionForms pins the two sanctioned //lint:allow placements
// (trailing and own-line) and that an allow for one analyzer does not
// silence another.
func TestSuppressionForms(t *testing.T) {
	idx := allowIndex{"f.go": {10: {"poolcheck"}, 11: {"poolcheck"}}}
	pos := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if !idx.allows("poolcheck", pos(10)) {
		t.Error("trailing-form line not allowed")
	}
	if !idx.allows("poolcheck", pos(11)) {
		t.Error("line after own-line comment not allowed")
	}
	if idx.allows("determinism", pos(10)) {
		t.Error("allow for poolcheck must not silence determinism")
	}
	if idx.allows("poolcheck", pos(12)) {
		t.Error("allow must not reach two lines down")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		want    []string
	}{
		{"//lint:allow poolcheck — justification", []string{"poolcheck"}},
		{"//lint:allow determinism,exhaustive partial switch", []string{"determinism", "exhaustive"}},
		{"// lint:allow atomicfield", []string{"atomicfield"}},
		{"// plain comment", nil},
		{"//lint:allowother", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.comment)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("parseAllow(%q) = %v, want %v", c.comment, got, c.want)
		}
	}
}

// TestLoadRepoPackage exercises the production loader path cmd/relaylint
// uses, against a real repo package.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/dnswire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != modulePath+"/internal/dnswire" {
		t.Fatalf("loaded %v", pkgs)
	}
	findings, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in dnswire: %s", f)
	}
}
