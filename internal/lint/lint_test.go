package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runGolden is the analysistest-style harness: it loads one testdata
// package under a fabricated import path, runs a single analyzer
// through the production pipeline (including //lint:allow suppression)
// and matches findings against `// want "regex"` comments line by line.
func runGolden(t *testing.T, a *Analyzer, dirname, asPath string) {
	t.Helper()
	runGoldenMulti(t, []*Analyzer{a}, dirname, asPath)
}

// runGoldenMulti is runGolden over several analyzers at once, for
// testdata whose want set mixes analyzers (the suppress package).
// Findings from the "lint" pseudo-analyzer (dead //lint:allow
// directives) participate in want matching like any other.
func runGoldenMulti(t *testing.T, as []*Analyzer, dirname, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", dirname)
	pkg, err := LoadDir("../..", dir, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, as)
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, pkg, findings)
}

// matchWants checks findings against the package's `// want "regex"`
// comments line by line: every finding needs a want, every want a
// finding.
func matchWants(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	type expectation struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[string][]*expectation{} // "file:line" → pending expectations
	wantRe := regexp.MustCompile("^// want [\"`]([^\"`]+)[\"`]")
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &expectation{re: regexp.MustCompile(m[1])})
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.hit && exp.re.MatchString(f.Message) {
				exp.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s", key, f.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.hit {
				t.Errorf("missing finding at %s matching %q", key, exp.re)
			}
		}
	}
}

func TestPoolcheckGolden(t *testing.T) {
	runGolden(t, Poolcheck, "poolcheck", modulePath+"/lintdata/poolcheck")
}

func TestDeterminismGolden(t *testing.T) {
	// The fabricated path ends in internal/core, putting the testdata
	// inside the deterministic package set.
	runGolden(t, Determinism, "determinism", modulePath+"/lintdata/internal/core")
}

func TestAtomicfieldGolden(t *testing.T) {
	runGolden(t, Atomicfield, "atomicfield", modulePath+"/lintdata/atomicfield")
}

func TestEpochcheckGolden(t *testing.T) {
	runGolden(t, Epochcheck, "epochcheck", modulePath+"/lintdata/epochcheck")
}

func TestExhaustiveGolden(t *testing.T) {
	runGolden(t, Exhaustive, "exhaustive", modulePath+"/lintdata/exhaustive")
}

func TestLockorderGolden(t *testing.T) {
	// The fabricated path ends in internal/masque, inside the guarded set.
	runGolden(t, Lockorder, "lockorder", modulePath+"/lintdata/internal/masque")
}

func TestGoroleakGolden(t *testing.T) {
	runGolden(t, Goroleak, "goroleak", modulePath+"/lintdata/internal/masque")
}

func TestDurabilityGolden(t *testing.T) {
	// The fabricated path ends in internal/relayd, inside the durable-
	// artifact set.
	runGolden(t, Durability, "durability", modulePath+"/lintdata/internal/relayd")
}

// TestSuppressGolden runs the suppress testdata through the full suite
// pipeline with two analyzers: the multi-analyzer directive must
// silence both, the own-line form must cover a block statement, a
// directive naming the wrong analyzer must silence nothing, and a
// typo'd analyzer name must surface as a finding of its own.
func TestSuppressGolden(t *testing.T) {
	pkg, err := LoadDir("../..", filepath.Join("testdata", "src", "suppress"), modulePath+"/lintdata/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunSuite([]*Package{pkg}, []*Analyzer{Poolcheck, Determinism})
	if err != nil {
		t.Fatal(err)
	}
	var lintFs, rest []Finding
	for _, f := range report.Findings {
		if f.Analyzer == "lint" {
			lintFs = append(lintFs, f)
		} else {
			rest = append(rest, f)
		}
	}
	matchWants(t, pkg, rest)
	if len(lintFs) != 1 || !strings.Contains(lintFs[0].Message, `unknown analyzer "determinsm"`) {
		t.Errorf("want exactly one dead-directive finding for the typo'd name, got %v", lintFs)
	}
	stats := map[string]AnalyzerStat{}
	for _, st := range report.Analyzers {
		stats[st.Name] = st
	}
	if got := stats["poolcheck"].Suppressions; got != 1 {
		t.Errorf("poolcheck suppressions = %d, want 1 (the multi-analyzer line)", got)
	}
	if got := stats["determinism"].Suppressions; got != 2 {
		t.Errorf("determinism suppressions = %d, want 2 (multi-analyzer line + own-line block)", got)
	}
}

// TestSuppressionForms pins the two sanctioned //lint:allow placements
// (trailing and own-line) and that an allow for one analyzer does not
// silence another.
func TestSuppressionForms(t *testing.T) {
	idx := allowIndex{"f.go": {10: {"poolcheck"}, 11: {"poolcheck"}}}
	pos := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	if !idx.allows("poolcheck", pos(10)) {
		t.Error("trailing-form line not allowed")
	}
	if !idx.allows("poolcheck", pos(11)) {
		t.Error("line after own-line comment not allowed")
	}
	if idx.allows("determinism", pos(10)) {
		t.Error("allow for poolcheck must not silence determinism")
	}
	if idx.allows("poolcheck", pos(12)) {
		t.Error("allow must not reach two lines down")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		want    []string
	}{
		{"//lint:allow poolcheck — justification", []string{"poolcheck"}},
		{"//lint:allow determinism,exhaustive partial switch", []string{"determinism", "exhaustive"}},
		{"// lint:allow atomicfield", []string{"atomicfield"}},
		{"// plain comment", nil},
		{"//lint:allowother", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.comment)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("parseAllow(%q) = %v, want %v", c.comment, got, c.want)
		}
	}
}

// TestLoadRepoPackage exercises the production loader path cmd/relaylint
// uses, against a real repo package.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/dnswire")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != modulePath+"/internal/dnswire" {
		t.Fatalf("loaded %v", pkgs)
	}
	findings, err := RunAnalyzers(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding in dnswire: %s", f)
	}
}
