package lint

import (
	"go/ast"
	"go/types"
)

// Epochcheck guards the epoch-publication pattern (internal/epochmap,
// the iputil trie snapshots): a map published through an atomic.Pointer
// is immutable from the moment of the pointer store, so
//
//   - a map reached through atomic.Pointer.Load must never be written —
//     no index assignment, no delete, no clear. Readers race with the
//     publishing writer by design; a single mutation through a loaded
//     snapshot is a data race against every concurrent reader;
//   - a map-typed struct field whose address is given to
//     atomic.Pointer.Store is published in place and must not be
//     touched plainly afterwards (or before: publication makes the
//     field's identity a snapshot, so all access goes through Load).
//
// Together with atomicfield (which keeps the pointer itself behind its
// methods) this makes the full epoch lifecycle machine-checked.
var Epochcheck = &Analyzer{
	Name: "epochcheck",
	Doc: "a map published through an atomic.Pointer is immutable: no writes " +
		"via Load, no plain access to Store'd fields",
	Run: runEpochcheck,
}

func runEpochcheck(pass *Pass) error {
	reportStoredFieldAccess(pass)
	reportLoadedMapWrites(pass)
	return nil
}

// reportStoredFieldAccess flags plain access to map-typed struct fields
// that are published in place via atomic.Pointer.Store(&field).
func reportStoredFieldAccess(pass *Pass) {
	// First sweep: &x.f arguments to atomic.Pointer Store/Swap/
	// CompareAndSwap mark the field as published and bless those
	// selector nodes (mirrors atomicfield's two-sweep shape).
	published := map[*types.Var]bool{}
	blessed := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicPointerMethod(pass.Info, call, "Store", "Swap", "CompareAndSwap") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				f := fieldOf(pass.Info, sel)
				if f == nil {
					continue
				}
				if _, isMap := f.Type().Underlying().(*types.Map); !isMap {
					continue
				}
				published[f] = true
				blessed[sel] = true
			}
			return true
		})
	}
	if len(published) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if f := fieldOf(pass.Info, sel); f != nil && published[f] && !blessed[sel] {
				pass.Reportf(sel.Pos(),
					"plain access to map field %s, which is published through an atomic.Pointer; go through Load",
					f.Name())
			}
			return true
		})
	}
}

// reportLoadedMapWrites flags mutation of maps whose value traces back
// to atomic.Pointer.Load: direct writes through the loaded pointer and
// writes through local variables assigned from it. The propagation is
// flow-insensitive (a fixpoint over the package's assignments), which
// errs toward reporting — a variable that ever held a published
// snapshot should never be the target of a map write.
func reportLoadedMapWrites(pass *Pass) {
	// Fixpoint: loaded holds locals whose value derives from a Load.
	loaded := map[*types.Var]bool{}
	derived := func(e ast.Expr) bool { return loadDerived(pass.Info, loaded, e) }
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					if !derived(rhs) {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := pass.Info.ObjectOf(id).(*types.Var)
					if ok && !loaded[v] {
						loaded[v] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if ok && derived(ix.X) {
						pass.Reportf(ix.Pos(),
							"write to a map obtained from atomic.Pointer.Load; published epochs are immutable")
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || (id.Name != "delete" && id.Name != "clear") {
					return true
				}
				if _, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); !isBuiltin {
					return true
				}
				if len(n.Args) > 0 && derived(n.Args[0]) {
					pass.Reportf(n.Pos(),
						"%s on a map obtained from atomic.Pointer.Load; published epochs are immutable", id.Name)
				}
			}
			return true
		})
	}
}

// loadDerived reports whether e yields a published map or a pointer to
// one: an atomic.Pointer.Load call on a map pointee, a variable in
// loaded, or a dereference of either.
func loadDerived(info *types.Info, loaded map[*types.Var]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.StarExpr:
		return loadDerived(info, loaded, e.X)
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		return ok && loaded[v]
	case *ast.CallExpr:
		if !isAtomicPointerMethod(info, e, "Load") {
			return false
		}
		// Only pointer-to-map loads participate; atomic.Pointer over
		// other types is atomicfield's business.
		t := info.TypeOf(e)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		_, isMap := ptr.Elem().Underlying().(*types.Map)
		return isMap
	}
	return false
}

// isAtomicPointerMethod reports whether call invokes one of the named
// methods on a sync/atomic wrapper type (Pointer, Value, …).
func isAtomicPointerMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}
