// Package scan implements the paper's measurements *through* the relay
// (§3, §4.3): a dual-request harness — a Safari-like fetch against an own
// logging web server plus a curl-like fetch of an IP-echo service — run
// on a 5-minute cadence over a scan day (Figure 3) and on a 30-second
// cadence over 48 hours for the egress address-rotation analysis.
//
// Target servers are preamble-aware (see masque.ReadSourcePreamble): the
// simulated egress source address plays the role of the IP header's
// source field.
package scan

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/relay"
)

// WebServer is the scan's own logging web server: it records every
// requester address and answers a minimal HTTP-ish response.
type WebServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu  sync.Mutex
	log []netip.Addr
}

// StartWebServer launches the server on loopback.
func StartWebServer() (*WebServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ws := &WebServer{ln: ln}
	ws.wg.Add(1)
	go ws.serve()
	return ws, nil
}

// Addr returns the listen address.
func (ws *WebServer) Addr() string { return ws.ln.Addr().String() }

// Close stops the server.
func (ws *WebServer) Close() { ws.ln.Close(); ws.wg.Wait() }

// Log returns the requester addresses observed so far.
func (ws *WebServer) Log() []netip.Addr {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]netip.Addr(nil), ws.log...)
}

func (ws *WebServer) serve() {
	defer ws.wg.Done()
	for {
		c, err := ws.ln.Accept()
		if err != nil {
			return
		}
		ws.wg.Add(1)
		go func(c net.Conn) {
			defer ws.wg.Done()
			defer c.Close()
			br := bufio.NewReader(c)
			src, err := masque.ReadSourcePreamble(br)
			if err != nil {
				return
			}
			ws.mu.Lock()
			ws.log = append(ws.log, src)
			ws.mu.Unlock()
			// Consume the request line, then answer.
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(c, "HTTP/1.1 200 OK\r\n\r\nok\r\n")
		}(c)
	}
}

// EchoServer mirrors the requester's address in the response body, like
// ipecho.net/plain.
type EchoServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

// StartEchoServer launches the echo service on loopback.
func StartEchoServer() (*EchoServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	es := &EchoServer{ln: ln}
	es.wg.Add(1)
	go es.serve()
	return es, nil
}

// Addr returns the listen address.
func (es *EchoServer) Addr() string { return es.ln.Addr().String() }

// Close stops the server.
func (es *EchoServer) Close() { es.ln.Close(); es.wg.Wait() }

func (es *EchoServer) serve() {
	defer es.wg.Done()
	for {
		c, err := es.ln.Accept()
		if err != nil {
			return
		}
		es.wg.Add(1)
		go func(c net.Conn) {
			defer es.wg.Done()
			defer c.Close()
			br := bufio.NewReader(c)
			src, err := masque.ReadSourcePreamble(br)
			if err != nil {
				return
			}
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(c, "%s\n", src)
		}(c)
	}
}

// Observation is one scan round's outcome.
type Observation struct {
	Round int
	// At is the virtual timestamp of the round (Round × Interval).
	At time.Duration
	// Operator is the egress operator AS of the round's tunnel.
	Operator bgp.ASN
	// SafariEgress is the requester address the web server logged.
	SafariEgress netip.Addr
	// CurlEgress is the address the echo service returned.
	CurlEgress netip.Addr
	// Failed marks rounds where the tunnel could not be established.
	Failed bool
}

// Config describes a through-relay scan.
type Config struct {
	Device *relay.Device
	Web    *WebServer
	Echo   *EchoServer
	// Rounds is the number of measurement rounds.
	Rounds int
	// Interval is the virtual time between rounds (5 min for the
	// operator scan, 30 s for the rotation scan). Wall-clock execution
	// runs as fast as the tunnels allow.
	Interval time.Duration
}

// Run executes the scan: per round, one fresh tunnel carrying the two
// parallel requests.
func Run(ctx context.Context, cfg Config) ([]Observation, error) {
	out := make([]Observation, 0, cfg.Rounds)
	for round := 0; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		obs := Observation{Round: round, At: time.Duration(round) * cfg.Interval}
		tun, err := cfg.Device.Connect(ctx)
		if err != nil {
			obs.Failed = true
			out = append(out, obs)
			continue
		}
		obs.Operator = tun.Operator

		before := len(cfg.Web.Log())
		// Safari-like request: fetch from the logging web server.
		if s, _, err := tun.Open(cfg.Web.Addr()); err == nil {
			fmt.Fprintf(s, "GET / HTTP/1.1\n")
			_, _ = io.ReadAll(s)
			s.Close()
		}
		logNow := cfg.Web.Log()
		if len(logNow) > before {
			obs.SafariEgress = logNow[len(logNow)-1]
		}

		// curl-like request: fetch the echo service and parse the body.
		if s, _, err := tun.Open(cfg.Echo.Addr()); err == nil {
			fmt.Fprintf(s, "GET /plain HTTP/1.1\n")
			body, _ := io.ReadAll(s)
			s.Close()
			if a, err := netip.ParseAddr(strings.TrimSpace(string(body))); err == nil {
				obs.CurlEgress = a
			}
		}
		tun.Close()
		out = append(out, obs)
	}
	return out, nil
}

// DominantOperator returns the operator serving the most rounds and the
// observations filtered to it. The paper's 48-hour rotation numbers (six
// addresses, four subnets) describe one operator's location pool; rounds
// on other operators during switch bursts are reported separately.
func DominantOperator(obs []Observation) (bgp.ASN, []Observation) {
	counts := map[bgp.ASN]int{}
	for _, o := range obs {
		if !o.Failed {
			counts[o.Operator]++
		}
	}
	var best bgp.ASN
	for as, n := range counts {
		if n > counts[best] {
			best = as
		}
	}
	var filtered []Observation
	for _, o := range obs {
		if !o.Failed && o.Operator == best {
			filtered = append(filtered, o)
		}
	}
	return best, filtered
}

// OperatorChange is one Figure 3 event: the egress operator differing
// from the previous round's.
type OperatorChange struct {
	Round int
	At    time.Duration
	From  bgp.ASN
	To    bgp.ASN
}

// OperatorChanges extracts the change events from a scan.
func OperatorChanges(obs []Observation) []OperatorChange {
	var out []OperatorChange
	var prev bgp.ASN
	have := false
	for _, o := range obs {
		if o.Failed {
			continue
		}
		if have && o.Operator != prev {
			out = append(out, OperatorChange{Round: o.Round, At: o.At, From: prev, To: o.Operator})
		}
		prev = o.Operator
		have = true
	}
	return out
}

// RotationStats summarizes egress address behaviour (§4.3).
type RotationStats struct {
	Rounds int
	// DistinctAddrs and DistinctSubnets count over all observed egress
	// addresses (both request types).
	DistinctAddrs   int
	DistinctSubnets int
	// ChangeRate is the share of consecutive curl observations whose
	// address differs from the previous one.
	ChangeRate float64
	// ParallelDiffer counts rounds where the Safari and curl requests of
	// the same round saw different egress addresses.
	ParallelDiffer int
}

// Rotation computes rotation statistics. subnetOf attributes an egress
// address to its listed egress subnet (e.g. via geo.DB.Network built from
// the egress list); nil falls back to /24 aggregation.
func Rotation(obs []Observation, subnetOf func(netip.Addr) (netip.Prefix, bool)) RotationStats {
	st := RotationStats{Rounds: len(obs)}
	addrs := map[netip.Addr]bool{}
	subnets := map[netip.Prefix]bool{}
	record := func(a netip.Addr) {
		if !a.IsValid() {
			return
		}
		addrs[a] = true
		if subnetOf != nil {
			if p, ok := subnetOf(a); ok {
				subnets[p] = true
				return
			}
		}
		subnets[netip.PrefixFrom(a, 24).Masked()] = true
	}
	var prevCurl netip.Addr
	changes, comparisons := 0, 0
	for _, o := range obs {
		if o.Failed {
			continue
		}
		record(o.SafariEgress)
		record(o.CurlEgress)
		if o.CurlEgress.IsValid() && prevCurl.IsValid() {
			comparisons++
			if o.CurlEgress != prevCurl {
				changes++
			}
		}
		if o.CurlEgress.IsValid() {
			prevCurl = o.CurlEgress
		}
		if o.SafariEgress.IsValid() && o.CurlEgress.IsValid() && o.SafariEgress != o.CurlEgress {
			st.ParallelDiffer++
		}
	}
	st.DistinctAddrs = len(addrs)
	st.DistinctSubnets = len(subnets)
	if comparisons > 0 {
		st.ChangeRate = float64(changes) / float64(comparisons)
	}
	return st
}
