// Package scan implements the paper's measurements *through* the relay
// (§3, §4.3): a dual-request harness — a Safari-like fetch against an own
// logging web server plus a curl-like fetch of an IP-echo service — run
// on a 5-minute cadence over a scan day (Figure 3) and on a 30-second
// cadence over 48 hours for the egress address-rotation analysis.
//
// Target servers are preamble-aware (see masque.ReadSourcePreamble): the
// simulated egress source address plays the role of the IP header's
// source field.
package scan

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/relay"
)

// WebServer is the scan's own logging web server: it records every
// requester address and answers a minimal HTTP-ish response.
type WebServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu  sync.Mutex
	log []netip.Addr
}

// StartWebServer launches the server on loopback.
func StartWebServer() (*WebServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ws := &WebServer{ln: ln}
	ws.wg.Add(1)
	go ws.serve()
	return ws, nil
}

// Addr returns the listen address.
func (ws *WebServer) Addr() string { return ws.ln.Addr().String() }

// Close stops the server.
func (ws *WebServer) Close() { ws.ln.Close(); ws.wg.Wait() }

// Log returns the requester addresses observed so far.
func (ws *WebServer) Log() []netip.Addr {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]netip.Addr(nil), ws.log...)
}

func (ws *WebServer) serve() {
	defer ws.wg.Done()
	for {
		c, err := ws.ln.Accept()
		if err != nil {
			return
		}
		ws.wg.Add(1)
		go func(c net.Conn) {
			defer ws.wg.Done()
			defer c.Close()
			br := bufio.NewReader(c)
			src, err := masque.ReadSourcePreamble(br)
			if err != nil {
				return
			}
			ws.mu.Lock()
			ws.log = append(ws.log, src)
			ws.mu.Unlock()
			// Consume the request line, then answer.
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(c, "HTTP/1.1 200 OK\r\n\r\nok\r\n")
		}(c)
	}
}

// EchoServer mirrors the requester's address in the response body, like
// ipecho.net/plain.
type EchoServer struct {
	ln net.Listener
	wg sync.WaitGroup
}

// StartEchoServer launches the echo service on loopback.
func StartEchoServer() (*EchoServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	es := &EchoServer{ln: ln}
	es.wg.Add(1)
	go es.serve()
	return es, nil
}

// Addr returns the listen address.
func (es *EchoServer) Addr() string { return es.ln.Addr().String() }

// Close stops the server.
func (es *EchoServer) Close() { es.ln.Close(); es.wg.Wait() }

func (es *EchoServer) serve() {
	defer es.wg.Done()
	for {
		c, err := es.ln.Accept()
		if err != nil {
			return
		}
		es.wg.Add(1)
		go func(c net.Conn) {
			defer es.wg.Done()
			defer c.Close()
			br := bufio.NewReader(c)
			src, err := masque.ReadSourcePreamble(br)
			if err != nil {
				return
			}
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(c, "%s\n", src)
		}(c)
	}
}

// Observation is one scan round's outcome.
type Observation struct {
	Round int
	// At is the virtual timestamp of the round (Round × Interval).
	At time.Duration
	// Operator is the egress operator AS of the round's tunnel.
	Operator bgp.ASN
	// SafariEgress is the requester address the web server logged.
	SafariEgress netip.Addr
	// CurlEgress is the address the echo service returned.
	CurlEgress netip.Addr
	// Failed marks rounds where the tunnel could not be established even
	// after retries; ConnectErr carries the final establishment error.
	Failed     bool
	ConnectErr error
	// SafariErr and CurlErr record per-request failures of an otherwise
	// established round — a failed stream open, an unlogged request, an
	// unparsable echo body. A zero egress address with a nil error can no
	// longer be mistaken for "never attempted".
	SafariErr error
	CurlErr   error
}

// PartialFailure reports whether the round established a tunnel but lost
// at least one of its two requests.
func (o *Observation) PartialFailure() bool {
	return !o.Failed && (o.SafariErr != nil || o.CurlErr != nil)
}

// ErrAllRoundsFailed distinguishes a scan in which no round established
// a tunnel — the relay (or its resolution path) was down for the whole
// run — from partial degradation, which is reported per Observation.
var ErrAllRoundsFailed = errors.New("scan: every round failed to establish a tunnel")

// Config describes a through-relay scan.
type Config struct {
	Device *relay.Device
	Web    *WebServer
	Echo   *EchoServer
	// Rounds is the number of measurement rounds.
	Rounds int
	// Interval is the virtual time between rounds (5 min for the
	// operator scan, 30 s for the rotation scan). Wall-clock execution
	// runs as fast as the tunnels allow.
	Interval time.Duration
	// Connect shapes per-round tunnel-establishment retries (zero value:
	// 3 attempts, 50ms base backoff on the wall clock).
	Connect relay.ConnectRetry
	// Connector overrides the dialer (default: Device). Tests inject
	// flaky connectors here.
	Connector relay.Connector
}

// Run executes the scan: per round, one fresh tunnel carrying the two
// parallel requests. A round whose tunnel cannot be established after
// retries is recorded as Failed and the scan moves on; Run returns
// ErrAllRoundsFailed only when every round was lost that way.
func Run(ctx context.Context, cfg Config) ([]Observation, error) {
	conn := cfg.Connector
	if conn == nil {
		conn = cfg.Device
	}
	out := make([]Observation, 0, cfg.Rounds)
	failedRounds := 0
	for round := 0; round < cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		obs := Observation{Round: round, At: time.Duration(round) * cfg.Interval}
		tun, err := relay.ConnectWithRetry(ctx, conn, cfg.Connect)
		if err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			obs.Failed = true
			obs.ConnectErr = err
			failedRounds++
			out = append(out, obs)
			continue
		}
		obs.Operator = tun.Operator

		before := len(cfg.Web.Log())
		// Safari-like request: fetch from the logging web server.
		if s, _, err := tun.Open(cfg.Web.Addr()); err != nil {
			obs.SafariErr = fmt.Errorf("scan: safari request: %w", err)
		} else {
			fmt.Fprintf(s, "GET / HTTP/1.1\n")
			_, _ = io.ReadAll(s)
			s.Close()
		}
		logNow := cfg.Web.Log()
		if len(logNow) > before {
			obs.SafariEgress = logNow[len(logNow)-1]
		} else if obs.SafariErr == nil {
			obs.SafariErr = errors.New("scan: safari request: server logged no egress address")
		}

		// curl-like request: fetch the echo service and parse the body.
		if s, _, err := tun.Open(cfg.Echo.Addr()); err != nil {
			obs.CurlErr = fmt.Errorf("scan: curl request: %w", err)
		} else {
			fmt.Fprintf(s, "GET /plain HTTP/1.1\n")
			body, _ := io.ReadAll(s)
			s.Close()
			a, err := netip.ParseAddr(strings.TrimSpace(string(body)))
			if err != nil {
				obs.CurlErr = fmt.Errorf("scan: curl request: bad echo body %q: %w",
					strings.TrimSpace(string(body)), err)
			} else {
				obs.CurlEgress = a
			}
		}
		tun.Close()
		out = append(out, obs)
	}
	if cfg.Rounds > 0 && failedRounds == cfg.Rounds {
		return out, fmt.Errorf("%w (%d rounds, last: %v)",
			ErrAllRoundsFailed, failedRounds, out[len(out)-1].ConnectErr)
	}
	return out, nil
}

// DominantOperator returns the operator serving the most rounds, the
// observations filtered to it, and ok=false when no round succeeded (the
// zero ASN is a legal value, so absence must be explicit — previously an
// empty observation set read a phantom zero entry and returned ASN 0 as
// if it were a measurement). Ties break toward the smaller ASN so the
// result is independent of map iteration order. The paper's 48-hour
// rotation numbers (six addresses, four subnets) describe one operator's
// location pool; rounds on other operators during switch bursts are
// reported separately.
func DominantOperator(obs []Observation) (bgp.ASN, []Observation, bool) {
	counts := map[bgp.ASN]int{}
	for _, o := range obs {
		if !o.Failed {
			counts[o.Operator]++
		}
	}
	if len(counts) == 0 {
		return 0, nil, false
	}
	var best bgp.ASN
	bestN := -1
	for as, n := range counts {
		if n > bestN || (n == bestN && as < best) {
			best, bestN = as, n
		}
	}
	var filtered []Observation
	for _, o := range obs {
		if !o.Failed && o.Operator == best {
			filtered = append(filtered, o)
		}
	}
	return best, filtered, true
}

// OperatorChange is one Figure 3 event: the egress operator differing
// from the previous round's.
type OperatorChange struct {
	Round int
	At    time.Duration
	From  bgp.ASN
	To    bgp.ASN
}

// OperatorChanges extracts the change events from a scan.
func OperatorChanges(obs []Observation) []OperatorChange {
	var out []OperatorChange
	var prev bgp.ASN
	have := false
	for _, o := range obs {
		if o.Failed {
			continue
		}
		if have && o.Operator != prev {
			out = append(out, OperatorChange{Round: o.Round, At: o.At, From: prev, To: o.Operator})
		}
		prev = o.Operator
		have = true
	}
	return out
}

// RotationStats summarizes egress address behaviour (§4.3).
type RotationStats struct {
	Rounds int
	// DistinctAddrs and DistinctSubnets count over all observed egress
	// addresses (both request types).
	DistinctAddrs   int
	DistinctSubnets int
	// ChangeRate is the share of consecutive curl observations whose
	// address differs from the previous one.
	ChangeRate float64
	// ParallelDiffer counts rounds where the Safari and curl requests of
	// the same round saw different egress addresses.
	ParallelDiffer int
	// FailedRounds counts rounds with no tunnel; SafariFailures and
	// CurlFailures count per-request losses inside established rounds.
	FailedRounds   int
	SafariFailures int
	CurlFailures   int
}

// Rotation computes rotation statistics. subnetOf attributes an egress
// address to its listed egress subnet (e.g. via geo.DB.Network built from
// the egress list); nil falls back to /24 aggregation.
func Rotation(obs []Observation, subnetOf func(netip.Addr) (netip.Prefix, bool)) RotationStats {
	st := RotationStats{Rounds: len(obs)}
	addrs := map[netip.Addr]bool{}
	subnets := map[netip.Prefix]bool{}
	record := func(a netip.Addr) {
		if !a.IsValid() {
			return
		}
		addrs[a] = true
		if subnetOf != nil {
			if p, ok := subnetOf(a); ok {
				subnets[p] = true
				return
			}
		}
		subnets[netip.PrefixFrom(a, 24).Masked()] = true
	}
	var prevCurl netip.Addr
	changes, comparisons := 0, 0
	for _, o := range obs {
		if o.Failed {
			st.FailedRounds++
			continue
		}
		if o.SafariErr != nil {
			st.SafariFailures++
		}
		if o.CurlErr != nil {
			st.CurlFailures++
		}
		record(o.SafariEgress)
		record(o.CurlEgress)
		if o.CurlEgress.IsValid() && prevCurl.IsValid() {
			comparisons++
			if o.CurlEgress != prevCurl {
				changes++
			}
		}
		if o.CurlEgress.IsValid() {
			prevCurl = o.CurlEgress
		}
		if o.SafariEgress.IsValid() && o.CurlEgress.IsValid() && o.SafariEgress != o.CurlEgress {
			st.ParallelDiffer++
		}
	}
	st.DistinctAddrs = len(addrs)
	st.DistinctSubnets = len(subnets)
	if comparisons > 0 {
		st.ChangeRate = float64(changes) / float64(comparisons)
	}
	return st
}
