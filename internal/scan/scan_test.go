package scan

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/relay"
	"github.com/relay-networks/privaterelay/internal/resolver"
)

var (
	scanWorld *netsim.World
	scanDep   *relay.Deployment
	scanOnce  sync.Once
)

func testHarness(t testing.TB) (*relay.Deployment, *relay.Device, *WebServer, *EchoServer) {
	t.Helper()
	scanOnce.Do(func() {
		scanWorld = netsim.NewWorld(netsim.Params{Seed: 15, Scale: 0.0005})
		scanDep = relay.NewDeployment(scanWorld, egress.Generate(scanWorld, 15))
	})
	dep := scanDep
	client := dep.World.ClientASes[1].Prefixes[0].Addr().Next()
	svc, err := relay.StartService(dep, relay.ServiceConfig{Client: client, Month: netsim.MonthApr, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	svc.Issuer.DailyLimit = 1 << 20 // scans establish many tunnels

	auth := dnsserver.NewAuthServer(dep.World, netsim.MonthApr, nil)
	res := resolver.New(netip.MustParseAddr("9.9.9.9"),
		&dnsserver.MemTransport{Handler: auth, Source: netip.MustParseAddr("9.9.9.9")})
	dev := &relay.Device{Client: client, Resolver: res, Service: svc, Account: "scanner", Day: "2022-05-11"}

	ws, err := StartWebServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ws.Close)
	es, err := StartEchoServer()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(es.Close)
	return dep, dev, ws, es
}

func TestScanRoundCollectsBothRequests(t *testing.T) {
	_, dev, ws, es := testHarness(t)
	obs, err := Run(context.Background(), Config{
		Device: dev, Web: ws, Echo: es, Rounds: 5, Interval: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5 {
		t.Fatalf("observations = %d", len(obs))
	}
	for i, o := range obs {
		if o.Failed {
			t.Fatalf("round %d failed", i)
		}
		if !o.SafariEgress.IsValid() || !o.CurlEgress.IsValid() {
			t.Fatalf("round %d missing egress observations: %+v", i, o)
		}
		if o.At != time.Duration(i)*5*time.Minute {
			t.Fatalf("round %d virtual time %v", i, o.At)
		}
		if o.Operator == 0 {
			t.Fatalf("round %d has no operator", i)
		}
	}
}

func TestOperatorChangesOverScanDay(t *testing.T) {
	dep, dev, ws, es := testHarness(t)
	// A scan day at 5-minute cadence: 288 rounds (Figure 3).
	obs, err := Run(context.Background(), Config{
		Device: dev, Web: ws, Echo: es, Rounds: 288, Interval: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	changes := OperatorChanges(obs)
	if len(changes) == 0 {
		t.Fatal("no operator changes over the scan day")
	}
	if len(changes) > 60 {
		t.Fatalf("%d operator changes — selection should be mostly stable", len(changes))
	}
	// Only Cloudflare and AkamaiPR appear (Fastly absent at this
	// location unless the hash made it present — then it may appear too).
	ops := map[string]bool{}
	for _, o := range obs {
		if !o.Failed {
			ops[netsim.ASName(o.Operator)] = true
		}
	}
	if !ops["AkamaiPR"] && !ops["Cloudflare"] {
		t.Fatalf("unexpected operator set: %v", ops)
	}
	_ = dep
}

func TestRotationStats48h(t *testing.T) {
	dep, dev, ws, es := testHarness(t)
	// 48 hours at 30 s cadence would be 5760 rounds; 600 suffice for
	// stable statistics in the simulator.
	obs, err := Run(context.Background(), Config{
		Device: dev, Web: ws, Echo: es, Rounds: 600, Interval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := dep.GeoDB()
	st := Rotation(obs, func(a netip.Addr) (netip.Prefix, bool) {
		p, _, ok := db.Network(a)
		return p, ok
	})
	// §4.3: six distinct addresses from four subnets; >66 % change rate.
	if st.DistinctAddrs < 5 || st.DistinctAddrs > 12 {
		t.Errorf("distinct addrs = %d, want ≈6 per operator pool", st.DistinctAddrs)
	}
	if st.DistinctSubnets < 3 || st.DistinctSubnets > 10 {
		t.Errorf("distinct subnets = %d, want ≈4 per operator pool", st.DistinctSubnets)
	}
	if st.ChangeRate <= 0.66 {
		t.Errorf("change rate = %.2f, want >0.66", st.ChangeRate)
	}
	if st.ParallelDiffer == 0 {
		t.Error("parallel Safari/curl requests never differed in egress address")
	}
	if st.Rounds != 600 {
		t.Errorf("rounds = %d", st.Rounds)
	}
}

func TestRotationFallbackAggregation(t *testing.T) {
	obs := []Observation{
		{CurlEgress: netip.MustParseAddr("172.224.224.1")},
		{CurlEgress: netip.MustParseAddr("172.224.224.2")},
		{CurlEgress: netip.MustParseAddr("172.224.225.1")},
	}
	st := Rotation(obs, nil)
	if st.DistinctAddrs != 3 || st.DistinctSubnets != 2 {
		t.Fatalf("fallback aggregation: %+v", st)
	}
	if st.ChangeRate != 1.0 {
		t.Fatalf("change rate = %v", st.ChangeRate)
	}
}

func TestOperatorChangesSkipsFailedRounds(t *testing.T) {
	obs := []Observation{
		{Round: 0, Operator: netsim.ASCloudflare},
		{Round: 1, Failed: true},
		{Round: 2, Operator: netsim.ASCloudflare},
		{Round: 3, Operator: netsim.ASAkamaiPR},
	}
	changes := OperatorChanges(obs)
	if len(changes) != 1 || changes[0].Round != 3 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].From != netsim.ASCloudflare || changes[0].To != netsim.ASAkamaiPR {
		t.Fatalf("change endpoints: %+v", changes[0])
	}
}

func TestForcedIngressDoesNotChangeEgressBehaviour(t *testing.T) {
	dep, dev, ws, es := testHarness(t)
	open, err := Run(context.Background(), Config{Device: dev, Web: ws, Echo: es, Rounds: 60, Interval: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Force a fixed ingress (§3 fixed-DNS scan), then repeat.
	forced := dep.World.IngressFleet(netsim.ASAkamaiPR, netsim.MonthApr, netsim.ProtoDefault, netsim.FamilyV4, 0)[3]
	dev.Resolver.AddLocalZone(dnsserver.MaskDomain, forcedZone(forced))
	defer dev.Resolver.ClearLocalZone(dnsserver.MaskDomain)
	fixed, err := Run(context.Background(), Config{Device: dev, Web: ws, Echo: es, Rounds: 60, Interval: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	db := dep.GeoDB()
	lookup := func(a netip.Addr) (netip.Prefix, bool) { p, _, ok := db.Network(a); return p, ok }
	so, sf := Rotation(open, lookup), Rotation(fixed, lookup)
	// §4.3: no egress behaviour difference when forcing the ingress.
	if sf.ChangeRate <= 0.5 {
		t.Fatalf("fixed-scan change rate collapsed: %.2f", sf.ChangeRate)
	}
	if diff := sf.DistinctAddrs - so.DistinctAddrs; diff > 4 || diff < -4 {
		t.Fatalf("distinct addrs diverge: open=%d fixed=%d", so.DistinctAddrs, sf.DistinctAddrs)
	}
}

// forcedZone builds the unbound-style local records for one ingress.
func forcedZone(addr netip.Addr) []dnswire.Record {
	return []dnswire.Record{{
		Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: addr,
	}}
}
