package scan

import (
	"context"
	"errors"
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"github.com/relay-networks/privaterelay/internal/faults"
	"github.com/relay-networks/privaterelay/internal/relay"
)

// flakyConnector fails every failEvery-th Connect attempt, wrapping the
// real device otherwise.
type flakyConnector struct {
	inner     relay.Connector
	failEvery int64
	n         atomic.Int64
}

var errSynthetic = errors.New("synthetic connect failure")

func (f *flakyConnector) Connect(ctx context.Context) (*relay.Tunnel, error) {
	if f.n.Add(1)%f.failEvery == 0 {
		return nil, errSynthetic
	}
	return f.inner.Connect(ctx)
}

// deadConnector never connects.
type deadConnector struct{ n atomic.Int64 }

func (d *deadConnector) Connect(context.Context) (*relay.Tunnel, error) {
	d.n.Add(1)
	return nil, errSynthetic
}

// TestRunRetriesFlakyTunnelEstablishment: transient connect failures
// must be absorbed by the per-round retry, not surface as Failed rounds.
func TestRunRetriesFlakyTunnelEstablishment(t *testing.T) {
	_, dev, ws, es := testHarness(t)
	fc := &flakyConnector{inner: dev, failEvery: 2}
	obs, err := Run(context.Background(), Config{
		Device: dev, Web: ws, Echo: es, Rounds: 20, Interval: 30 * time.Second,
		Connector: fc,
		Connect:   relay.ConnectRetry{Attempts: 3, Clock: faults.NewVirtualClock()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Failed {
			t.Fatalf("round %d failed (%v) despite retries absorbing a 1-in-2 failure rate",
				o.Round, o.ConnectErr)
		}
		if !o.SafariEgress.IsValid() || !o.CurlEgress.IsValid() {
			t.Fatalf("round %d incomplete: %+v", o.Round, o)
		}
	}
	if fc.n.Load() <= 20 {
		t.Fatalf("connector saw %d attempts for 20 rounds; retries evidently never fired", fc.n.Load())
	}
}

// TestRunDistinguishesFullFailure: a relay that is down for the whole
// scan yields ErrAllRoundsFailed with per-round ConnectErr, not a silent
// slice of zero observations.
func TestRunDistinguishesFullFailure(t *testing.T) {
	_, dev, ws, es := testHarness(t)
	dc := &deadConnector{}
	obs, err := Run(context.Background(), Config{
		Device: dev, Web: ws, Echo: es, Rounds: 5, Interval: 30 * time.Second,
		Connector: dc,
		Connect:   relay.ConnectRetry{Attempts: 2, Clock: faults.NewVirtualClock()},
	})
	if !errors.Is(err, ErrAllRoundsFailed) {
		t.Fatalf("err = %v, want ErrAllRoundsFailed", err)
	}
	if len(obs) != 5 {
		t.Fatalf("got %d observations, want 5 (failed rounds are still rounds)", len(obs))
	}
	for _, o := range obs {
		if !o.Failed || !errors.Is(o.ConnectErr, errSynthetic) {
			t.Fatalf("round %d: Failed=%v ConnectErr=%v", o.Round, o.Failed, o.ConnectErr)
		}
	}
	if got := dc.n.Load(); got != 10 {
		t.Fatalf("dead connector dialed %d times, want 5 rounds x 2 attempts = 10", got)
	}
	st := Rotation(obs, nil)
	if st.FailedRounds != 5 {
		t.Fatalf("RotationStats.FailedRounds = %d, want 5", st.FailedRounds)
	}
}

// TestConnectWithRetryStopsOnBlocked: service blocking is a state, not a
// fault — no retries.
func TestConnectWithRetryStopsOnBlocked(t *testing.T) {
	blocked := connectorFunc(func(context.Context) (*relay.Tunnel, error) {
		return nil, relay.ErrServiceBlocked
	})
	calls := 0
	counting := connectorFunc(func(ctx context.Context) (*relay.Tunnel, error) {
		calls++
		return blocked(ctx)
	})
	_, err := relay.ConnectWithRetry(context.Background(), counting,
		relay.ConnectRetry{Attempts: 5, Clock: faults.NewVirtualClock()})
	if !errors.Is(err, relay.ErrServiceBlocked) {
		t.Fatalf("err = %v, want ErrServiceBlocked", err)
	}
	if calls != 1 {
		t.Fatalf("blocked service dialed %d times, want 1", calls)
	}
}

type connectorFunc func(context.Context) (*relay.Tunnel, error)

func (f connectorFunc) Connect(ctx context.Context) (*relay.Tunnel, error) { return f(ctx) }

// TestDominantOperatorEmptySet pins the zero-value fix: no successful
// rounds must report ok=false instead of inventing ASN 0.
func TestDominantOperatorEmptySet(t *testing.T) {
	if as, obs, ok := DominantOperator(nil); ok || as != 0 || obs != nil {
		t.Fatalf("nil set: (%v, %v, %v), want (0, nil, false)", as, obs, ok)
	}
	failed := []Observation{{Round: 0, Failed: true}, {Round: 1, Failed: true}}
	if _, _, ok := DominantOperator(failed); ok {
		t.Fatal("all-failed set reported a dominant operator")
	}
	// Ties break toward the smaller ASN, independent of map order.
	tied := []Observation{
		{Round: 0, Operator: 65002}, {Round: 1, Operator: 65001},
		{Round: 2, Operator: 65002}, {Round: 3, Operator: 65001},
	}
	for i := 0; i < 32; i++ {
		as, filtered, ok := DominantOperator(tied)
		if !ok || as != 65001 || len(filtered) != 2 {
			t.Fatalf("tie broke to (%v, %d obs, %v), want (65001, 2, true)", as, len(filtered), ok)
		}
	}
}

// TestRotationCountsRequestFailures: per-request errors inside
// established rounds surface in the stats instead of vanishing into
// zero-valued addresses.
func TestRotationCountsRequestFailures(t *testing.T) {
	a := netip.MustParseAddr("203.0.113.9")
	obs := []Observation{
		{Round: 0, SafariEgress: a, CurlEgress: a},
		{Round: 1, SafariErr: errors.New("stream reset"), CurlEgress: a},
		{Round: 2, SafariEgress: a, CurlErr: errors.New("bad body")},
		{Round: 3, Failed: true},
	}
	if !obs[1].PartialFailure() || !obs[2].PartialFailure() {
		t.Fatal("rounds with one lost request must report PartialFailure")
	}
	if obs[0].PartialFailure() || obs[3].PartialFailure() {
		t.Fatal("clean and fully-failed rounds are not partial failures")
	}
	st := Rotation(obs, nil)
	if st.SafariFailures != 1 || st.CurlFailures != 1 || st.FailedRounds != 1 {
		t.Fatalf("failure counters (safari=%d curl=%d rounds=%d), want 1/1/1",
			st.SafariFailures, st.CurlFailures, st.FailedRounds)
	}
}
