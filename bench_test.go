// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md's per-experiment index) plus the ablations of the
// design choices called out there. Each benchmark regenerates its
// artifact end to end at a reduced world scale and reports the headline
// quantity as a custom metric, so `go test -bench=.` both times the
// pipelines and re-derives the paper's numbers.
package privaterelay_test

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"runtime/metrics"
	"sync"
	"testing"

	"github.com/relay-networks/privaterelay/internal/analysis"
	"github.com/relay-networks/privaterelay/internal/atlas"
	"github.com/relay-networks/privaterelay/internal/bgp"
	"github.com/relay-networks/privaterelay/internal/core"
	"github.com/relay-networks/privaterelay/internal/dnsserver"
	"github.com/relay-networks/privaterelay/internal/dnswire"
	"github.com/relay-networks/privaterelay/internal/egress"
	"github.com/relay-networks/privaterelay/internal/experiments"
	"github.com/relay-networks/privaterelay/internal/iputil"
	"github.com/relay-networks/privaterelay/internal/masque"
	"github.com/relay-networks/privaterelay/internal/netsim"
	"github.com/relay-networks/privaterelay/internal/quicsim"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// env returns the shared benchmark environment (built once per process).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.NewEnv(42, 0.0008) })
	return benchEnv
}

// --- Tables ---

// BenchmarkTable1IngressEvolution regenerates Table 1: eight ECS scans
// (four months × two planes, January fallback absent).
func BenchmarkTable1IngressEvolution(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	var rows []analysis.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = e.Table1(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	apr := rows[3]
	b.ReportMetric(float64(apr.DefaultApple+apr.DefaultAkamai), "apr_ingress_addrs")
	_, ak := apr.SharePct()
	b.ReportMetric(ak, "apr_akamai_share_pct")
}

// BenchmarkTable2ClientAttribution regenerates Table 2: the April scan's
// serving statistics joined with AS populations.
func BenchmarkTable2ClientAttribution(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	var rows []analysis.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = e.Table2(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Group == "Both" {
			b.ReportMetric(float64(r.Subnets), "both_group_slash24s")
		}
	}
}

// BenchmarkTable3EgressSubnets regenerates Table 3 from the attributed
// egress list (240k entries).
func BenchmarkTable3EgressSubnets(b *testing.B) {
	e := env(b)
	var rows []analysis.Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = e.Table3()
	}
	for _, r := range rows {
		if r.AS == netsim.ASAkamaiPR {
			b.ReportMetric(float64(r.V6Subnets), "akamaipr_v6_subnets")
		}
	}
}

// BenchmarkTable4CoveredCities regenerates Table 4.
func BenchmarkTable4CoveredCities(b *testing.B) {
	e := env(b)
	var rows []analysis.Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = e.Table4()
	}
	for _, r := range rows {
		if r.AS == netsim.ASAkamaiPR {
			b.ReportMetric(float64(r.Cities), "akamaipr_cities")
		}
	}
}

// --- Figures ---

// BenchmarkFigure2GeoScatter builds the IPv4 geolocation panels.
func BenchmarkFigure2GeoScatter(b *testing.B) {
	e := env(b)
	var panels map[string]analysis.GeoBounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels = e.Figure2()
	}
	b.ReportMetric(float64(panels["Cloudflare"].DistinctCountries), "cloudflare_ccs")
}

// BenchmarkFigure3OperatorChanges runs the through-relay operator scan
// (a virtual day at 5-minute cadence, open + fixed DNS).
func BenchmarkFigure3OperatorChanges(b *testing.B) {
	e := env(b)
	ctx := context.Background()
	var res *experiments.RelayScanResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.RelayScan(ctx, 96, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.OpenChanges)), "open_scan_changes")
	b.ReportMetric(float64(len(res.FixedChanges)), "fixed_scan_changes")
}

// BenchmarkFigure4LocationCDFs builds all per-operator city CDFs.
func BenchmarkFigure4LocationCDFs(b *testing.B) {
	e := env(b)
	var cdfs map[string][]analysis.CDFPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdfs = e.Figure4(analysis.ByCity, netsim.FamilyV6)
	}
	b.ReportMetric(float64(len(cdfs["AkamaiPR"])), "akamaipr_v6_cities")
}

// BenchmarkFigure5GeoScatterV4V6 builds all six geolocation panels.
func BenchmarkFigure5GeoScatterV4V6(b *testing.B) {
	e := env(b)
	var panels map[string]analysis.GeoBounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels = e.Figure5()
	}
	b.ReportMetric(float64(len(panels)), "panels")
}

// --- Section-level experiments ---

// BenchmarkS1ECSScanApril is the headline April default-plane scan.
func BenchmarkS1ECSScanApril(b *testing.B) {
	e := env(b)
	srv := dnsserver.NewAuthServer(e.World, netsim.MonthApr, nil)
	cfg := core.ScanConfig{
		Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
		Domain:       dnsserver.MaskDomain,
		Universe:     e.World.RoutedV4Prefixes(),
		Attribution:  e.World.Table,
		RespectScope: true,
	}
	var ds *core.Dataset
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		ds, err = core.Scan(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.Addresses)), "ingress_addrs")
	b.ReportMetric(float64(ds.Stats.QueriesSent), "queries")
}

// BenchmarkScanThroughput measures the scan hot path itself: subnets
// processed per second on the in-memory transport at several concurrency
// levels. The paper's live scan took ≈40 h for 12M /24s; this benchmark
// tracks how far the pipeline is from wire speed. Alongside throughput
// it reports mutex-wait nanoseconds per subnet from runtime/metrics, so
// the trajectory files (BENCH_exchange.json) show whether a scaling
// change came from contention or from per-op cost.
func BenchmarkScanThroughput(b *testing.B) {
	e := env(b)
	for _, conc := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("conc-%d", conc), func(b *testing.B) {
			srv := dnsserver.NewAuthServer(e.World, netsim.MonthApr, nil)
			cfg := core.ScanConfig{
				Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
				Domain:       dnsserver.MaskDomain,
				Universe:     e.World.RoutedV4Prefixes(),
				Attribution:  e.World.Table,
				RespectScope: true,
				Concurrency:  conc,
			}
			var subnets int64
			waitBefore := mutexWaitSeconds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds, err := core.Scan(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				subnets += ds.Stats.SubnetsTotal
			}
			b.ReportMetric(float64(subnets)/b.Elapsed().Seconds(), "subnets/sec")
			if waited := mutexWaitSeconds() - waitBefore; subnets > 0 && waited >= 0 {
				b.ReportMetric(waited*1e9/float64(subnets), "contended-ns/subnet")
			}
		})
	}
}

// mutexWaitSeconds reads the process-wide cumulative mutex wait time.
// The counter covers every goroutine, so per-benchmark deltas are only
// meaningful because each sub-benchmark runs its scans to completion
// before sampling again.
func mutexWaitSeconds() float64 {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return sample[0].Value.Float64()
}

// BenchmarkS2AtlasValidation runs the A-record validation campaign and
// BenchmarkS3/S4 quantities alongside (one Atlas run covers S2–S4).
func BenchmarkS2AtlasValidation(b *testing.B) {
	e := env(b)
	var res *experiments.AtlasResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Atlas(context.Background(), 2000, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.V4Found), "v4_found")
	b.ReportMetric(float64(res.V4ExtraVsECS), "v4_extra_vs_ecs")
}

// BenchmarkS3AtlasIPv6 measures the AAAA enumeration.
func BenchmarkS3AtlasIPv6(b *testing.B) {
	e := env(b)
	var res *experiments.AtlasResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Atlas(context.Background(), 2000, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.V6Found), "v6_found")
}

// BenchmarkS4BlockingStudy measures the blocking classification.
func BenchmarkS4BlockingStudy(b *testing.B) {
	e := env(b)
	var res *experiments.AtlasResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Atlas(context.Background(), 2000, 800)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Blocking.BlockedShare(), "blocked_pct")
	b.ReportMetric(res.Blocking.TimeoutShare(), "timeout_pct")
}

// BenchmarkS5QUICVersionNegotiation runs the §3 probe matrix.
func BenchmarkS5QUICVersionNegotiation(b *testing.B) {
	e := env(b)
	var res *experiments.QUICResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.QUICProbes()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.VersionNegotiation.Versions)), "advertised_versions")
}

// BenchmarkS6EgressRotation runs the 30-second rotation scan.
func BenchmarkS6EgressRotation(b *testing.B) {
	e := env(b)
	var res *experiments.RelayScanResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.RelayScan(context.Background(), 8, 240)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rotation.DistinctAddrs), "distinct_addrs")
	b.ReportMetric(float64(res.Rotation.DistinctSubnets), "distinct_subnets")
	b.ReportMetric(res.Rotation.ChangeRate*100, "change_rate_pct")
}

// BenchmarkS7CorrelationAudit runs the §6 audit.
func BenchmarkS7CorrelationAudit(b *testing.B) {
	e := env(b)
	var res *experiments.CorrelationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = e.Correlation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Utilization.UsedShare(), "prefix_used_pct")
	b.ReportMetric(float64(len(res.LastHopPairs)), "shared_lasthop_pairs")
}

// BenchmarkS8GeoBias computes the §4.2 country-share summary.
func BenchmarkS8GeoBias(b *testing.B) {
	e := env(b)
	var usShare float64
	var small int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares, s := analysis.CountryShares(e.Attributed, 50)
		usShare, small = shares[0].Share, s
	}
	b.ReportMetric(usShare, "us_share_pct")
	b.ReportMetric(float64(small), "ccs_under_50")
}

// BenchmarkS9ODoHPath checks the Appendix B DNS path.
func BenchmarkS9ODoHPath(b *testing.B) {
	e := env(b)
	var bits int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, ecs := e.ODoHCheck()
		bits = ecs.Bits()
	}
	b.ReportMetric(float64(bits), "ecs_bits")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationScopeSkip compares the §7 scope-respecting scan with
// the naive full-/24 iteration: same discovery, fewer queries.
func BenchmarkAblationScopeSkip(b *testing.B) {
	e := env(b)
	for _, mode := range []struct {
		name string
		skip bool
	}{{"respect-scope", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			srv := dnsserver.NewAuthServer(e.World, netsim.MonthApr, nil)
			cfg := core.ScanConfig{
				Exchanger:    &dnsserver.MemTransport{Handler: srv, Source: netip.MustParseAddr("198.51.100.53")},
				Domain:       dnsserver.MaskDomain,
				Universe:     e.World.RoutedV4Prefixes(),
				Attribution:  e.World.Table,
				RespectScope: mode.skip,
			}
			var ds *core.Dataset
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				ds, err = core.Scan(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ds.Stats.QueriesSent), "queries")
			b.ReportMetric(float64(len(ds.Addresses)), "addrs_found")
		})
	}
}

// BenchmarkAblationLPM compares the radix-trie longest-prefix match with
// a linear scan over the announcement list.
func BenchmarkAblationLPM(b *testing.B) {
	e := env(b)
	var announcements []bgp.Announcement
	e.World.Table.Walk(func(a bgp.Announcement) bool {
		announcements = append(announcements, a)
		return true
	})
	addrs := make([]netip.Addr, 512)
	for i := range addrs {
		c := e.World.ClientASes[i%len(e.World.ClientASes)]
		addrs[i] = iputil.AddrAtIndex(c.Prefixes[0], uint64(i))
	}
	b.Run("radix-trie", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := e.World.Table.Origin(addrs[i%len(addrs)]); !ok {
				b.Fatal("miss")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addr := addrs[i%len(addrs)]
			bestBits := -1
			for _, a := range announcements {
				if a.Prefix.Contains(addr) && a.Prefix.Bits() > bestBits {
					bestBits = a.Prefix.Bits()
				}
			}
			if bestBits < 0 {
				b.Fatal("miss")
			}
		}
	})
}

// BenchmarkAblationRotation compares per-connection egress rotation with
// a sticky egress, reporting the linkability a passive observer gets:
// the share of consecutive connections reusing the same address.
func BenchmarkAblationRotation(b *testing.B) {
	pool := make([]netip.Addr, 6)
	for i := range pool {
		pool[i] = netip.AddrFrom4([4]byte{172, 224, 224, byte(i + 1)})
	}
	policies := []struct {
		name string
		rot  masque.RotationPolicy
	}{
		{"per-connection", &masque.PerConnectionRotation{Pool: pool, Seed: 1}},
		{"sticky", &masque.StickyRotation{Addr: pool[0]}},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			same := 0
			prev := p.rot.Next(0)
			for i := 1; i < b.N+1; i++ {
				a := p.rot.Next(uint64(i))
				if a == prev {
					same++
				}
				prev = a
			}
			if b.N > 0 {
				b.ReportMetric(float64(same)/float64(b.N)*100, "linkable_pct")
			}
		})
	}
}

// BenchmarkAblationNameCompression compares wire sizes of the 8-record
// ECS response with and without RFC 1035 name compression.
func BenchmarkAblationNameCompression(b *testing.B) {
	msg := &dnswire.Message{
		Header:    dnswire.Header{ID: 1, Response: true, Authoritative: true},
		Questions: []dnswire.Question{{Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
	}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.Record{
			Name: dnsserver.MaskDomain, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 60, A: netip.AddrFrom4([4]byte{17, 248, 0, byte(i)}),
		})
	}
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		var wire []byte
		for i := 0; i < b.N; i++ {
			var err error
			wire, err = msg.Encode(wire[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(wire)), "wire_bytes")
	})
	b.Run("uncompressed", func(b *testing.B) {
		b.ReportAllocs()
		var wire []byte
		for i := 0; i < b.N; i++ {
			var err error
			wire, err = msg.EncodeUncompressed(wire[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(wire)), "wire_bytes")
	})
}

// BenchmarkQUICVersionProbeWire measures raw probe encode/handle/decode.
func BenchmarkQUICVersionProbeWire(b *testing.B) {
	ep := &quicsim.IngressEndpoint{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := quicsim.VersionProbe(ep)
		if err != nil || !res.Responded {
			b.Fatal("probe failed")
		}
	}
}

// BenchmarkEgressListGeneration regenerates the full 240k-entry list.
func BenchmarkEgressListGeneration(b *testing.B) {
	e := env(b)
	var list *egress.List
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list = egress.Generate(e.World, 42)
	}
	b.ReportMetric(float64(len(list.Entries)), "entries")
}

// BenchmarkExtensionQoE runs the latency extension (future-work iii).
func BenchmarkExtensionQoE(b *testing.B) {
	e := env(b)
	var res *experiments.QoEResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = e.QoE(400)
	}
	b.ReportMetric(res.MedianOverhead, "median_overhead_x")
	b.ReportMetric(res.RelayFasterShare*100, "relay_faster_pct")
}

// BenchmarkExtensionGeoDBAdoption measures the geolocation-adoption scan.
func BenchmarkExtensionGeoDBAdoption(b *testing.B) {
	e := env(b)
	var adoption float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adoption = e.GeoDBAdoption(5000)
	}
	b.ReportMetric(adoption*100, "adoption_pct")
}

// --- Sharded pipeline benchmarks ---

var (
	benchPopOnce sync.Once
	benchPop     *atlas.Population
)

// population returns the shared campaign-benchmark population.
func population(b *testing.B) *atlas.Population {
	e := env(b)
	benchPopOnce.Do(func() {
		benchPop = atlas.NewPopulation(e.World, netsim.MonthApr, atlas.Config{Seed: 42, N: 2000, SubnetClusters: 800, Phase: 1})
	})
	return benchPop
}

// BenchmarkAttribute measures the egress-attribution join (240k entries
// against the full routing table) at several worker counts, plus the
// pre-sharding serial baseline (per-entry locked trie walk) so the
// speedup stays reproducible in-tree. All variants reuse one output
// buffer: the benchmark tracks join throughput, not allocator churn.
func BenchmarkAttribute(b *testing.B) {
	e := env(b)
	b.Run("serial-trie", func(b *testing.B) {
		out := make([]egress.Attributed, len(e.List.Entries))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, entry := range e.List.Entries {
				a := egress.Attributed{Entry: entry}
				if route, as, ok := e.World.Table.CoveringPrefix(entry.Prefix); ok {
					a.AS = as
					a.BGPPrefix = route
				}
				out[j] = a
			}
		}
		b.ReportMetric(float64(len(out))*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
	})
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var attributed []egress.Attributed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				attributed = egress.AttributeInto(attributed, e.List, e.World.Table, workers)
			}
			b.ReportMetric(float64(len(attributed))*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
		})
	}
}

// BenchmarkAtlasCampaign measures a cold A-record campaign: resolver
// caches are flushed outside the timer before every iteration, so each
// run replays the full per-probe resolve path.
func BenchmarkAtlasCampaign(b *testing.B) {
	pop := population(b)
	ctx := context.Background()
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			c := atlas.Campaign{Domain: dnsserver.MaskDomain, Type: dnswire.TypeA, Workers: workers}
			probes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pop.FlushCaches()
				b.StartTimer()
				res, err := c.Run(ctx, pop)
				if err != nil {
					b.Fatal(err)
				}
				probes += len(res)
			}
			b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "probes/sec")
		})
	}
}

// BenchmarkTable3 measures the sharded Table 3 aggregation over the
// attributed 240k-entry list, next to the pre-sharding serial baseline
// (one pass inserting every entry into per-AS dedup maps).
func BenchmarkTable3(b *testing.B) {
	e := env(b)
	b.Run("serial-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			type acc struct {
				row   analysis.Table3Row
				v4BGP map[netip.Prefix]bool
				v6BGP map[netip.Prefix]bool
				v6CCs map[string]bool
			}
			byAS := map[bgp.ASN]*acc{}
			for _, a := range e.Attributed {
				if a.AS == 0 {
					continue
				}
				ac := byAS[a.AS]
				if ac == nil {
					ac = &acc{row: analysis.Table3Row{AS: a.AS},
						v4BGP: map[netip.Prefix]bool{}, v6BGP: map[netip.Prefix]bool{}, v6CCs: map[string]bool{}}
					byAS[a.AS] = ac
				}
				if a.Prefix.Addr().Is4() {
					ac.row.V4Subnets++
					ac.row.V4Addrs += uint64(1) << (32 - a.Prefix.Bits())
					ac.v4BGP[a.BGPPrefix] = true
				} else {
					ac.row.V6Subnets++
					ac.v6BGP[a.BGPPrefix] = true
					ac.v6CCs[a.CC] = true
				}
			}
			if len(byAS) == 0 {
				b.Fatal("no rows")
			}
		}
		b.ReportMetric(float64(len(e.Attributed))*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
	})
	for _, workers := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var rows []analysis.Table3Row
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows = analysis.Table3N(e.Attributed, workers)
			}
			if len(rows) == 0 {
				b.Fatal("no rows")
			}
			b.ReportMetric(float64(len(e.Attributed))*float64(b.N)/b.Elapsed().Seconds(), "entries/sec")
		})
	}
}

// BenchmarkParseCSV measures parsing the full generated list back from
// Apple's CSV format.
func BenchmarkParseCSV(b *testing.B) {
	e := env(b)
	var buf bytes.Buffer
	if err := e.List.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := egress.ParseCSV(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(l.Entries) != len(e.List.Entries) {
			b.Fatalf("parsed %d entries, want %d", len(l.Entries), len(e.List.Entries))
		}
	}
	b.ReportMetric(float64(len(e.List.Entries))*float64(b.N)/b.Elapsed().Seconds(), "lines/sec")
}
